// Package goroutineleak requires every go statement in the serving
// packages (core, cache, pool, front) to have a provable exit. A leaked
// worker goroutine per request is the classic slow death of a serving
// tier: invisible in tests, fatal at production QPS.
//
// A spawned function (literal or named, resolved through the call graph)
// is provably exiting when every loop in its body is bounded:
//
//   - `for x := range ch` over a channel counts only when some close(ch)
//     site in the package targets the same channel object (the
//     worker-pool shape: workers drain a channel the dispatcher closes);
//   - range over a slice, map, array, or integer is bounded by data;
//   - a for statement with a condition is treated as bounded (the
//     condition-variable shapes are the analyzer's lenient side);
//   - an unconditional `for { }` must contain a select with a receive
//     case — ctx.Done() or another channel — whose body returns or
//     breaks (the cancellation-listener shape).
//
// Goroutines that are meant to live for the whole process carry a
// //boss:daemon marker, either in the spawned function's doc comment or
// on the line directly above the go statement. The marker's referent is
// verified: //boss:daemon on a function that neither contains a go
// statement nor is ever spawned by one is a stale-marker finding.
package goroutineleak

import (
	"go/ast"
	"go/types"

	"boss/internal/analysis"
)

// ScopePackages are the serving packages whose goroutines are checked.
var ScopePackages = []string{
	"internal/core",
	"internal/cache",
	"internal/pool",
	"internal/front",
}

// Analyzer is the goroutineleak check.
var Analyzer = &analysis.Analyzer{
	Name: "goroutineleak",
	Doc:  "require a provable exit (closed channel, cancellation select, bounded loop) for every goroutine spawned in serving packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	inScope := analysis.PkgPathHasAny(pass.Pkg.Path(), ScopePackages)
	if !inScope {
		return nil
	}
	closed := closeTargets(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDaemonMarker(pass, file, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGo(pass, file, fn, g, closed)
				return true
			})
		}
	}
	return nil
}

// closeTargets collects the objects (variables and fields) passed to the
// builtin close anywhere in the package.
func closeTargets(pass *analysis.Pass) map[types.Object]bool {
	closed := make(map[types.Object]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if b, ok := analysis.CalleeObj(pass.TypesInfo, call).(*types.Builtin); !ok || b.Name() != "close" {
				return true
			}
			if o := chanObj(pass.TypesInfo, call.Args[0]); o != nil {
				closed[o] = true
			}
			return true
		})
	}
	return closed
}

// chanObj resolves a channel expression to the variable or struct field
// that names it: the field object for f.execCh, the variable object for
// next.
func chanObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// checkGo verifies one go statement.
func checkGo(pass *analysis.Pass, file *ast.File, enclosing *ast.FuncDecl, g *ast.GoStmt, closed map[types.Object]bool) {
	// Waivers: marker on the enclosing function, on the line above the go
	// statement, or on the spawned named function's doc comment.
	if analysis.FuncHasMarker(enclosing, analysis.MarkerDaemon) {
		return
	}
	line := pass.Fset.Position(g.Pos()).Line
	if analysis.HasLineMarker(pass.Fset, file, line, analysis.MarkerDaemon) {
		return
	}

	var body *ast.BlockStmt
	var what string
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
		what = "goroutine"
	default:
		obj, ok := analysis.CalleeObj(pass.TypesInfo, g.Call).(*types.Func)
		if !ok {
			pass.Reportf(g.Pos(), "goroutine target is not statically resolvable; prove its exit or mark it //boss:daemon")
			return
		}
		fi := pass.Prog.InfoFor(obj)
		if fi == nil {
			pass.Reportf(g.Pos(), "goroutine runs %s, which is declared outside the analyzed packages; prove its exit or mark it //boss:daemon", obj.Name())
			return
		}
		if analysis.FuncHasMarker(fi.Decl, analysis.MarkerDaemon) {
			return
		}
		body = fi.Decl.Body
		what = "goroutine running " + obj.Name()
	}

	for _, why := range unboundedLoops(pass, body, closed) {
		pass.Reportf(g.Pos(), "%s has no provable exit: %s (close the channel it drains, select on ctx.Done(), or mark a process-lifetime worker //boss:daemon)", what, why)
	}
}

// unboundedLoops returns one reason per loop in body that cannot be
// shown to terminate.
func unboundedLoops(pass *analysis.Pass, body *ast.BlockStmt, closed map[types.Object]bool) []string {
	info := pass.TypesInfo
	var reasons []string
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			tv, ok := info.Types[x.X]
			if !ok {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				return true // bounded by the ranged collection
			}
			o := chanObj(info, x.X)
			if o == nil {
				reasons = append(reasons, "it ranges over a channel expression that cannot be traced to a close site")
				return true
			}
			if !closed[o] {
				reasons = append(reasons, "it ranges over channel "+o.Name()+", which is never closed in this package")
			}
		case *ast.ForStmt:
			if x.Cond != nil {
				return true // condition-bounded (lenient)
			}
			if !hasExitSelect(info, x.Body) {
				reasons = append(reasons, "its unconditional for loop has no select receive case that returns or breaks")
			}
		}
		return true
	})
	return reasons
}

// hasExitSelect reports whether the loop body contains a select with a
// receive case (ctx.Done() or any channel) whose body returns or breaks.
func hasExitSelect(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cc := range sel.Body.List {
			clause, ok := cc.(*ast.CommClause)
			if !ok || clause.Comm == nil {
				continue
			}
			if !isReceive(clause.Comm) {
				continue
			}
			if bodyExits(clause.Body) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isReceive(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		u, ok := x.X.(*ast.UnaryExpr)
		return ok && u.Op.String() == "<-"
	case *ast.AssignStmt:
		if len(x.Rhs) != 1 {
			return false
		}
		u, ok := x.Rhs[0].(*ast.UnaryExpr)
		return ok && u.Op.String() == "<-"
	}
	return false
}

func bodyExits(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		}
	}
	return false
}

// checkDaemonMarker verifies a //boss:daemon doc marker's referent: the
// function must contain a go statement or be spawned by one somewhere in
// the program.
func checkDaemonMarker(pass *analysis.Pass, file *ast.File, fn *ast.FuncDecl) {
	if !analysis.FuncHasMarker(fn, analysis.MarkerDaemon) {
		return
	}
	fi := pass.Prog.InfoForDecl(pass.P, fn)
	if fi == nil {
		return
	}
	if len(fi.Gos) > 0 {
		return
	}
	// Spawned anywhere?
	for _, other := range pass.Prog.Funcs {
		for _, g := range other.Gos {
			if obj, ok := analysis.CalleeObj(other.Pkg.TypesInfo, g.Call).(*types.Func); ok &&
				analysis.FuncKey(obj) == fi.Key {
				return
			}
		}
	}
	pass.Reportf(fn.Pos(), "stale //boss:daemon marker: %s neither contains a go statement nor is spawned by one", fn.Name.Name)
}
