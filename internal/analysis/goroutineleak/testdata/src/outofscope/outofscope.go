// Package outofscope is not a serving package: its goroutines are not
// checked.
package outofscope

// Spin would be a finding in scope.
func Spin() {
	go func() {
		for {
		}
	}()
}
