// Package pool exercises goroutineleak: worker-pool shapes, cancellation
// listeners, daemons, and the leaks between them.
package pool

import (
	"context"
	"time"
)

type Server struct {
	jobs chan int
	n    int
}

// worker drains the jobs channel; Close closes it, so the range provably
// ends.
func (s *Server) worker() {
	for j := range s.jobs {
		s.n += j
	}
}

// Start spawns provably-exiting goroutines: a named worker and a literal
// draining the same closed channel.
func (s *Server) Start() {
	go s.worker()
	go func() {
		for range s.jobs {
			s.n++
		}
	}()
}

// Close ends every worker.
func (s *Server) Close() { close(s.jobs) }

// leakyRange drains a channel nothing ever closes.
func leakyRange(ch chan int) {
	go func() { // want `ranges over channel ch, which is never closed in this package`
		for range ch {
		}
	}()
}

// spinSelect listens for cancellation: the ctx.Done receive case returns.
func spinSelect(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case t := <-tick:
				_ = t
			}
		}
	}()
}

// spinForever has no exit at all.
func spinForever() {
	go func() { // want `its unconditional for loop has no select receive case that returns or breaks`
		for {
		}
	}()
}

// boundedLoops terminate by data or condition: no findings.
func boundedLoops(items []int, n int) {
	go func() {
		total := 0
		for _, it := range items {
			total += it
		}
		for i := 0; i < n; i++ {
			total++
		}
	}()
}

// daemonLine waives one go statement with a marker on the line above.
func daemonLine() {
	//boss:daemon the flusher lives for the process lifetime.
	go func() {
		for {
		}
	}()
}

// janitor is a process-lifetime daemon; the doc marker waives it and its
// spawn site below keeps the marker fresh.
//
//boss:daemon reaped only at process exit.
func janitor() {
	for {
	}
}

func startJanitor() {
	go janitor()
}

// notADaemon carries the marker but neither spawns nor is spawned.
//
//boss:daemon left behind by a refactor.
func notADaemon() { // want `stale //boss:daemon marker: notADaemon neither contains a go statement nor is spawned by one`
}

// runDynamic spawns through a function value the call graph cannot
// resolve.
func runDynamic(fn func()) {
	go fn() // want `goroutine target is not statically resolvable`
}

// runForeign spawns a function declared outside the analyzed packages.
func runForeign(d time.Duration) {
	go time.Sleep(d) // want `goroutine runs Sleep, which is declared outside the analyzed packages`
}

// hedgeResult / hedgeRun model the hedged-request dispatch shape: each
// runner delivers into a cap-1 buffered channel, so the losing runner's
// send never blocks and its goroutine provably exits after cancellation.
type hedgeResult struct{ err error }

func hedgeRun(ctx context.Context, ch chan<- hedgeResult) {
	ch <- hedgeResult{err: ctx.Err()}
}

// hedgedDispatch spawns primary and backup runners by name, adopts the
// first arrival, and cancels the loser: both spawns resolve statically
// and contain no loops, so there are no findings.
func hedgedDispatch(ctx context.Context) hedgeResult {
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	pch := make(chan hedgeResult, 1)
	go hedgeRun(pctx, pch)
	bctx, bcancel := context.WithCancel(ctx)
	defer bcancel()
	bch := make(chan hedgeResult, 1)
	go hedgeRun(bctx, bch)
	select {
	case r := <-pch:
		bcancel()
		return r
	case r := <-bch:
		pcancel()
		return r
	}
}

// hedgedCollector is the leaked twin: it fans hedge results into a
// range over a channel nothing in the package ever closes, so the
// collector outlives every dispatch.
func hedgedCollector(results chan hedgeResult) {
	go func() { // want `ranges over channel results, which is never closed in this package`
		for range results {
		}
	}()
}

// hedgedDynamic is the other leaked twin: the runner arrives as a
// function value, so the hedge spawn's exit cannot be proven.
func hedgedDynamic(attempt func() hedgeResult, ch chan<- hedgeResult) {
	go func() { // want `its unconditional for loop has no select receive case that returns or breaks`
		for {
			ch <- attempt()
		}
	}()
}
