package goroutineleak_test

import (
	"testing"

	"boss/internal/analysis/analysistest"
	"boss/internal/analysis/goroutineleak"
)

func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, "testdata/src", goroutineleak.Analyzer)
}
