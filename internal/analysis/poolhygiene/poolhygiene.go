// Package poolhygiene checks the repository's sync.Pool discipline:
//
//  1. a function that Gets from a pool must Put back to the same pool —
//     positionally, on every return after the Get there must be a prior or
//     deferred Put — unless the function carries //boss:pool-escapes
//     (the object intentionally outlives the call, e.g. a pooled cursor
//     released by its own Release method);
//  2. a pooled object must be reset before Put: the function must visibly
//     touch the object (assign through it, clear() it, or call a
//     reset/clear/release-named method on it) before handing it back, so a
//     stale-field bug cannot ride a recycled object into the next query.
//
// Both checks are intraprocedural and positional rather than path-
// sensitive: a Put inside one branch counts for a return in another. That
// keeps the analyzer dependency-free (no CFG package) and errs on the
// lenient side; the straight-line Get→use→Put shape every call site in this
// repository uses is checked exactly.
package poolhygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"boss/internal/analysis"
)

// Analyzer is the poolhygiene check.
var Analyzer = &analysis.Analyzer{
	Name: "poolhygiene",
	Doc:  "require sync.Pool Get/Put pairing and reset-before-Put in the same function (waive escapes with //boss:pool-escapes)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		// A //boss:pool-escapes marker that is not a function's doc comment
		// waives nothing — its function was renamed or refactored away.
		for _, pos := range analysis.DanglingMarkers(file, analysis.MarkerPoolEscapes) {
			pass.Reportf(pos, "dangling //boss:pool-escapes marker: not attached to any function declaration; move it onto the escaping function's doc comment or delete it")
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			escapes := analysis.FuncHasMarker(fn, analysis.MarkerPoolEscapes)
			suppressed := checkFunc(pass, fn, escapes)
			if escapes && suppressed == 0 {
				pass.Reportf(fn.Pos(), "stale //boss:pool-escapes marker: every Get in %s is paired with a Put, so the waiver suppresses nothing; remove it", fn.Name.Name)
			}
		}
	}
	return nil
}

// poolCall is one Get or Put on a pool rooted at a specific object.
type poolCall struct {
	call     *ast.CallExpr
	pool     types.Object // root of the receiver expression
	deferred bool
}

// checkFunc checks one function. With escapes set it reports nothing for
// the Get/Put pairing rules and instead returns how many findings the
// waiver suppressed, so the caller can flag a waiver that no longer
// suppresses anything.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, escapes bool) (suppressed int) {
	info := pass.TypesInfo
	var gets, puts []poolCall
	var returns []token.Pos

	// Record deferred calls first so the main walk does not double-count
	// them when it reaches the CallExpr node inside the DeferStmt.
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, pool := poolMethod(info, x); name != "" {
				pc := poolCall{call: x, pool: pool, deferred: deferred[x]}
				if name == "Get" {
					gets = append(gets, pc)
				} else {
					puts = append(puts, pc)
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, x.Pos())
		}
		return true
	})

	for _, g := range gets {
		if !pairedPut(g, puts) {
			if escapes {
				suppressed++
				continue
			}
			pass.Reportf(g.call.Pos(), "sync.Pool.Get without a Put on the same pool in this function (waive with //boss:pool-escapes if the object outlives the call)")
			continue
		}
		// Positional leak check: every return after the Get needs a Put
		// (same pool) before it, or a deferred Put.
		for _, ret := range returns {
			if ret < g.call.End() {
				continue
			}
			if !putBefore(g, puts, ret) {
				if escapes {
					suppressed++
					continue
				}
				pass.Reportf(ret, "return leaks a pooled object: no Put on the pool obtained at %s before this return", pass.Fset.Position(g.call.Pos()))
			}
		}
	}

	for _, p := range puts {
		checkResetBeforePut(pass, fn, p)
	}
	return suppressed
}

// pairedPut reports whether some Put targets the same pool object as g.
func pairedPut(g poolCall, puts []poolCall) bool {
	for _, p := range puts {
		if samePool(g, p) {
			return true
		}
	}
	return false
}

// putBefore reports whether a Put on g's pool precedes pos (deferred Puts
// count regardless of position once declared before the return).
func putBefore(g poolCall, puts []poolCall, pos token.Pos) bool {
	for _, p := range puts {
		if !samePool(g, p) {
			continue
		}
		if p.deferred || p.call.Pos() < pos {
			return true
		}
	}
	return false
}

func samePool(a, b poolCall) bool {
	return a.pool != nil && a.pool == b.pool
}

// poolMethod reports the method name ("Get" or "Put") and the root object
// of the receiver when call is a sync.Pool method call, or "", nil.
func poolMethod(info *types.Info, call *ast.CallExpr) (string, types.Object) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	if fn.Name() != "Get" && fn.Name() != "Put" {
		return "", nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return "", nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" {
		return "", nil
	}
	return fn.Name(), analysis.RootObj(info, sel.X)
}

// checkResetBeforePut verifies the Put argument was visibly reset earlier
// in the function.
func checkResetBeforePut(pass *analysis.Pass, fn *ast.FuncDecl, p poolCall) {
	if len(p.call.Args) != 1 {
		return
	}
	info := pass.TypesInfo
	arg := ast.Unparen(p.call.Args[0])
	root := analysis.RootObj(info, arg)
	if root == nil {
		return // Put(someCall()) — can't track; rare and reviewed by hand
	}
	// The loop variable of a `for _, x := range ...` over pooled objects
	// (releasing a batch) roots at the loop variable itself.
	limit := p.call.Pos()
	if p.deferred {
		limit = token.Pos(^uint64(0) >> 1) // defers run last: any touch counts
	}
	reset := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if reset {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Pos() >= limit {
				return true
			}
			for _, lhs := range x.Lhs {
				// Only writes *through* the object reset it; rebinding the
				// variable itself (x = poolGet()) does not.
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
					continue
				}
				if analysis.RootObj(info, lhs) == root {
					reset = true
				}
			}
		case *ast.IncDecStmt:
			if x.Pos() < limit && analysis.RootObj(info, x.X) == root {
				reset = true
			}
		case *ast.CallExpr:
			if x.Pos() >= limit || x == p.call {
				return true
			}
			switch callee := analysis.CalleeObj(info, x).(type) {
			case *types.Builtin:
				if callee.Name() == "clear" && len(x.Args) == 1 && analysis.RootObj(info, x.Args[0]) == root {
					reset = true
				}
			case *types.Func:
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok &&
					analysis.RootObj(info, sel.X) == root && resetLike(callee.Name()) {
					reset = true
				}
			}
		}
		return !reset
	})
	if !reset {
		pass.Reportf(p.call.Pos(), "pooled object is not reset before Put: clear its fields or call its reset method so stale state cannot leak into the next user")
	}
}

// resetLike reports whether a method name implies the receiver is being
// cleared for reuse.
func resetLike(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "reset") || strings.Contains(l, "clear") ||
		strings.Contains(l, "release") || strings.Contains(l, "truncate")
}
