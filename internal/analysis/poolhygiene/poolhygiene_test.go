package poolhygiene_test

import (
	"testing"

	"boss/internal/analysis/analysistest"
	"boss/internal/analysis/poolhygiene"
)

func TestPoolHygiene(t *testing.T) {
	analysistest.Run(t, "testdata/src", poolhygiene.Analyzer)
}
