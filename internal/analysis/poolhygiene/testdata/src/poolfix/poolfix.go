// Package poolfix exercises poolhygiene over the repository's sync.Pool
// idioms: balanced Get/Put, deferred Put, escape waivers, leaks on early
// returns, cross-pool mismatches, and the reset-before-Put rule.
package poolfix

import "sync"

type buf struct {
	data []byte
	n    int
}

// Reset clears the buffer for reuse.
func (b *buf) Reset() {
	b.data = b.data[:0]
	b.n = 0
}

var bufPool = sync.Pool{New: func() interface{} { return new(buf) }}

var otherPool = sync.Pool{New: func() interface{} { return new(buf) }}

// balanced is the canonical Get → use → reset → Put shape.
func balanced() int {
	b := bufPool.Get().(*buf)
	b.n = 7
	n := b.n
	b.data, b.n = b.data[:0], 0
	bufPool.Put(b)
	return n
}

// methodReset resets through a recognizably named method.
func methodReset() {
	b := bufPool.Get().(*buf)
	b.Reset()
	bufPool.Put(b)
}

// deferredPut covers every exit path, including the early return.
func deferredPut(spill bool) int {
	b := bufPool.Get().(*buf)
	defer bufPool.Put(b)
	if spill {
		return len(b.data)
	}
	b.n = 0
	return b.n
}

// leaks never Puts.
func leaks() *buf {
	b := bufPool.Get().(*buf) // want `sync\.Pool\.Get without a Put on the same pool`
	return b
}

// escapes hands the pooled object to its caller, who releases it later
// through release below — the waiver documents the ownership transfer.
//
//boss:pool-escapes the caller owns the buffer until it calls release.
func escapes() *buf {
	return bufPool.Get().(*buf)
}

// release is escapes' other half: Put without a Get here is fine, only the
// reset rule applies.
func release(b *buf) {
	b.data, b.n = b.data[:0], 0
	bufPool.Put(b)
}

// earlyReturn Puts on the fall-through path but leaks on the early return.
func earlyReturn(fail bool) int {
	b := bufPool.Get().(*buf)
	if fail {
		return 0 // want `return leaks a pooled object`
	}
	b.n = 0
	bufPool.Put(b)
	return 1
}

// wrongPool Puts to a different pool than it Got from.
func wrongPool() {
	b := bufPool.Get().(*buf) // want `sync\.Pool\.Get without a Put on the same pool`
	b.n = 0
	otherPool.Put(b)
}

// noReset hands a dirty object back: nothing touches it before the Put.
func noReset() []byte {
	b := bufPool.Get().(*buf)
	out := b.data
	bufPool.Put(b) // want `pooled object is not reset before Put`
	return out
}
