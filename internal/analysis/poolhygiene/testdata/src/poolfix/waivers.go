package poolfix

// anchor keeps the marker below out of the legal file-header position.
func anchor() int {
	return 0
}

// The marker below floats between declarations: whatever function it
// waived was renamed away.

//boss:pool-escapes orphaned waiver
// want-1 `dangling //boss:pool-escapes marker`

// pairedWaived Gets and Puts on every path, so its waiver suppresses
// nothing: the leak it once excused has been fixed.
//
//boss:pool-escapes left behind after the leak was fixed.
func pairedWaived() int { // want `stale //boss:pool-escapes marker: every Get in pairedWaived is paired with a Put`
	b := bufPool.Get().(*buf)
	b.n = 0
	bufPool.Put(b)
	return 1
}
