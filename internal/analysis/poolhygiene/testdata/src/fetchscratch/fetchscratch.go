// Package fetchscratch exercises poolhygiene over the fetch phase's
// scratch idiom: a pooled per-fetch buffer holding decoded field views.
// The views alias a decoded block, so a dirty buffer returned to the
// pool would pin that block (and leak stale payloads) into the next
// fetch — the reset-before-Put rule is load-bearing here, not stylistic.
package fetchscratch

import "sync"

// docScratch is one fetch's reusable state: the field views handed to
// the caller and the decode destination used on cache misses.
type docScratch struct {
	fields  [][]byte
	scratch []byte
}

// Reset drops the field views so a pooled buffer pins nothing.
func (s *docScratch) Reset() {
	for i := range s.fields {
		s.fields[i] = nil
	}
	s.fields = s.fields[:0]
}

var scratchPool = sync.Pool{New: func() interface{} { return new(docScratch) }}

// fetchOne is the canonical shape: Get, decode into the scratch, copy
// the payload out, Reset, Put.
func fetchOne(payload []byte) []byte {
	s := scratchPool.Get().(*docScratch)
	s.scratch = append(s.scratch[:0], payload...)
	s.fields = append(s.fields[:0], s.scratch)
	out := append([]byte(nil), s.fields[0]...)
	s.Reset()
	scratchPool.Put(s)
	return out
}

// fetchDeferred covers every exit path with a deferred Put; the reset
// runs before the deferred Put fires.
func fetchDeferred(payload []byte, fail bool) []byte {
	s := scratchPool.Get().(*docScratch)
	defer scratchPool.Put(s)
	if fail {
		s.Reset()
		return nil
	}
	s.scratch = append(s.scratch[:0], payload...)
	out := append([]byte(nil), s.scratch...)
	s.Reset()
	return out
}

// fetchDirty hands the buffer back still holding whatever field views
// the previous fetch left in it: the next user would see (and pin) a
// stale decoded block.
func fetchDirty() [][]byte {
	s := scratchPool.Get().(*docScratch)
	out := s.fields
	scratchPool.Put(s) // want `pooled object is not reset before Put`
	return out
}

// fetchLeaks never returns the scratch: every fetch allocates a new one
// and the pool never amortizes anything.
func fetchLeaks(payload []byte) []byte {
	s := scratchPool.Get().(*docScratch) // want `sync\.Pool\.Get without a Put on the same pool`
	s.scratch = append(s.scratch[:0], payload...)
	return s.scratch
}

// pinned hands the scratch to the caller as a zero-copy view handle;
// the waiver documents that releasePinned is the other half.
//
//boss:pool-escapes the caller holds the view until it calls releasePinned.
func pinned(payload []byte) *docScratch {
	s := scratchPool.Get().(*docScratch)
	s.fields = append(s.fields[:0], payload)
	return s
}

// releasePinned is pinned's other half.
func releasePinned(s *docScratch) {
	s.Reset()
	scratchPool.Put(s)
}
