// Package slabarena exercises poolhygiene over the arena-slab publish
// pattern internal/cache uses: Reserve carves a pooled slab whose ownership
// transfers to a longer-lived structure (Publish), and the release half puts
// it back once the last reader unpins it. The Get side is waived with
// //boss:pool-escapes; the Put side still owes a visible reset.
package slabarena

import "sync"

type slab struct {
	words []uint32
	used  int
}

// Release clears the slab for reuse.
func (s *slab) Release() {
	s.words = s.words[:0]
	s.used = 0
}

var slabPool = sync.Pool{New: func() interface{} { return new(slab) }}

// reserve carves a slab that the caller will publish into the cache; the
// object deliberately outlives this call.
//
//boss:pool-escapes published slabs live in the cache until eviction.
func reserve(n int) *slab {
	s := slabPool.Get().(*slab)
	if cap(s.words) < n {
		s.words = make([]uint32, 0, n)
	}
	return s
}

// evict is reserve's other half: the evicted slab is cleared and pooled.
func evict(s *slab) {
	s.Release()
	slabPool.Put(s)
}

// evictDirty hands an evicted slab back without clearing it, so a future
// reserve could observe the previous entry's postings.
func evictDirty(s *slab) {
	slabPool.Put(s) // want `pooled object is not reset before Put`
}

// reserveLeaky carves a slab without the escape waiver: poolhygiene cannot
// see a Put on this pool in the function and must flag the Get.
func reserveLeaky(n int) *slab {
	s := slabPool.Get().(*slab) // want `sync\.Pool\.Get without a Put on the same pool`
	s.used = n
	return s
}
