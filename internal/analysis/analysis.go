// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core: Analyzer, Pass, Diagnostic, a module
// loader, and a driver loop. The repository builds offline (no module
// downloads), so it cannot depend on x/tools; this package mirrors the
// upstream API shape closely enough that the analyzers under
// internal/analysis/... could be ported to real *analysis.Analyzer values
// by changing only their imports.
//
// The suite exists to mechanically enforce the repository's two load-bearing
// invariants (DESIGN.md "Enforced invariants"):
//
//   - determinism: simulated time must be byte-identical across runs, so
//     wall-clock reads, unseeded global rand, and order-sensitive map
//     iteration are banned from the model packages;
//   - zero-alloc hot paths: functions annotated //boss:hotpath must stay free
//     of the allocation-prone constructs PR 2 removed (sort.Slice, fmt,
//     closures, interface boxing, fresh-slice appends).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. It mirrors the upstream
// golang.org/x/tools/go/analysis.Analyzer field set that the drivers here
// use.
type Analyzer struct {
	// Name is the analyzer's command-line name (lowercase, no spaces).
	Name string
	// Doc is the help text; the first line is a summary.
	Doc string
	// Run applies the analyzer to a single package.
	Run func(*Pass) error
}

// Pass provides one analyzer run over one package with its syntax and type
// information, plus the shared cross-package Program layer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// P is the loaded package this pass runs over.
	P *Package
	// Prog is the whole loaded module: call graph, per-function summaries
	// (charges, locks, context parameters, go statements), and the lazy
	// compiler escape diagnostics.
	Prog *Program

	// Report delivers one diagnostic. The driver fills in the analyzer name.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// Posn resolves the diagnostic's position against a file set.
func (d Diagnostic) Posn(fset *token.FileSet) token.Position { return fset.Position(d.Pos) }
