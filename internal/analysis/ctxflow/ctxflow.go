// Package ctxflow enforces context propagation through the serving path
// (core, pool, front): a request's deadline and cancellation must be able
// to reach every blocking operation under it. Four rules:
//
//  1. context.Background() / context.TODO() are banned in the serving
//     packages. A fresh root context severs the caller's deadline. Two
//     shapes are exempt: the nil-guard `if ctx == nil { ctx =
//     context.Background() }` on a context parameter (a public API
//     accepting nil), and functions carrying //boss:ctx-root (deliberate
//     context roots, e.g. the front door's executor daemon, whose
//     deadline discipline lives elsewhere). The waiver is verified: a
//     //boss:ctx-root function that creates no root context is a stale-
//     marker finding.
//
//  2. A function that receives a context must thread it: passing a fresh
//     root context to a callee that accepts one, while holding the
//     caller's ctx, is a drop (subsumed by rule 1 in-scope; reported
//     distinctly so the message names the dropped parameter).
//
//  3. A function that receives a context must not call a context-blind
//     function that has a context-aware sibling: calling m.Search(...)
//     where m.SearchCtx(ctx, ...) exists silently discards the deadline.
//     The sibling convention is NameCtx, matching this repository's API
//     surface (Search/SearchCtx, Run/RunCtx, FetchDocs/FetchDocsCtx).
//
//  4. Unbounded retry loops must observe cancellation: a `for` statement
//     with no condition, inside a function that received a context, must
//     check ctx.Err() or select on ctx.Done() somewhere in its body —
//     otherwise a dead deadline spins the loop (breaker/backoff loops
//     regressing this way survive every happy-path test). time.Sleep is
//     likewise banned in scope: sleeping must select on ctx.Done() (see
//     pool.sleepCtx).
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"boss/internal/analysis"
)

// ScopePackages are the serving-path packages the analyzer applies to.
var ScopePackages = []string{
	"internal/core",
	"internal/pool",
	"internal/front",
}

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "require context propagation in serving paths: no fresh root contexts, no context-blind siblings, cancellation-aware retry loops",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathHasAny(pass.Pkg.Path(), ScopePackages) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// rootCtxCall reports whether call is context.Background() or
// context.TODO(), returning the function name.
func rootCtxCall(info *types.Info, call *ast.CallExpr) string {
	obj, ok := analysis.CalleeObj(info, call).(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name()
	}
	return ""
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	prog := pass.Prog
	var ctxParam *types.Var
	if fi := prog.InfoForDecl(pass.P, fn); fi != nil {
		ctxParam = fi.CtxParam
	}
	waived := analysis.FuncHasMarker(fn, analysis.MarkerCtxRoot)
	allowed := nilGuardedRoots(info, fn.Body)

	rooted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name := rootCtxCall(info, x); name != "" {
				rooted = true
				if !waived && !allowed[x] {
					pass.Reportf(x.Pos(), "context.%s severs the caller's deadline in a serving path (thread the request context, or mark a deliberate root with //boss:ctx-root)", name)
				}
				return true
			}
			if ctxParam != nil {
				checkSibling(pass, x)
			}
			checkSleep(pass, info, x)
		case *ast.ForStmt:
			if ctxParam != nil && x.Cond == nil {
				checkRetryLoop(pass, fn, x)
			}
		}
		return true
	})
	if waived && !rooted {
		pass.Reportf(fn.Pos(), "stale //boss:ctx-root marker: %s creates no root context", fn.Name.Name)
	}
}

// nilGuardedRoots collects Background/TODO calls that implement the
// accepted nil-guard shape: `if ctx == nil { ctx = context.Background() }`
// where ctx is a context-typed variable.
func nilGuardedRoots(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	allowed := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		v, nilE := ast.Unparen(cond.X), ast.Unparen(cond.Y)
		if tv, ok := info.Types[v]; !ok || !analysis.IsContextType(tv.Type) {
			v, nilE = nilE, v
		}
		tv, ok := info.Types[v]
		if !ok || !analysis.IsContextType(tv.Type) {
			return true
		}
		if ntv, ok := info.Types[nilE]; !ok || !ntv.IsNil() {
			return true
		}
		guarded := analysis.RootObj(info, v)
		for _, s := range ifs.Body.List {
			as, ok := s.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			if analysis.RootObj(info, as.Lhs[0]) != guarded || guarded == nil {
				continue
			}
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && rootCtxCall(info, call) != "" {
				allowed[call] = true
			}
		}
		return true
	})
	return allowed
}

// checkSibling flags calls to context-blind functions whose NameCtx
// sibling exists and accepts a context.
func checkSibling(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	obj, ok := analysis.CalleeObj(info, call).(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || hasCtxParam(sig) {
		return
	}
	sibName := obj.Name() + "Ctx"
	var sib types.Object
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		sibObj, _, _ := types.LookupFieldOrMethod(rt, true, obj.Pkg(), sibName)
		sib = sibObj
	} else {
		sib = obj.Pkg().Scope().Lookup(sibName)
	}
	sfn, ok := sib.(*types.Func)
	if !ok {
		return
	}
	ssig, ok := sfn.Type().(*types.Signature)
	if !ok || !hasCtxParam(ssig) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s drops the caller's context: context-aware sibling %s exists", obj.Name(), sibName)
}

func hasCtxParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if analysis.IsContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// checkSleep bans time.Sleep in the serving path: a raw sleep cannot be
// cancelled.
func checkSleep(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	obj, ok := analysis.CalleeObj(info, call).(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	if obj.Pkg().Path() == "time" && obj.Name() == "Sleep" {
		pass.Reportf(call.Pos(), "time.Sleep in a serving path cannot be cancelled; wait in a select on a timer and ctx.Done()")
	}
}

// checkRetryLoop requires an unbounded loop in a context-receiving
// function to observe cancellation in its body.
func checkRetryLoop(pass *analysis.Pass, fn *ast.FuncDecl, loop *ast.ForStmt) {
	info := pass.TypesInfo
	observes := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if observes {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if tv, ok := info.Types[sel.X]; ok && analysis.IsContextType(tv.Type) {
			observes = true
		}
		return true
	})
	if !observes {
		pass.Reportf(loop.Pos(), "unbounded loop in %s cannot observe cancellation: check ctx.Err() or select on ctx.Done() each iteration", fn.Name.Name)
	}
}
