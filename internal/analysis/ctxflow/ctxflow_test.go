package ctxflow_test

import (
	"testing"

	"boss/internal/analysis/analysistest"
	"boss/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src", ctxflow.Analyzer)
}
