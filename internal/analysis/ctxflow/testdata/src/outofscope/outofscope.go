// Package outofscope is not a serving-path package: ctxflow ignores it.
package outofscope

import (
	"context"
	"time"
)

// Setup may build root contexts and sleep freely — offline tooling.
func Setup() context.Context {
	time.Sleep(time.Millisecond)
	return context.Background()
}
