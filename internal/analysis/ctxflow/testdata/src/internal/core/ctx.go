// Package core exercises ctxflow inside a serving-path package.
package core

import (
	"context"
	"time"
)

type Model struct{}

// Search is the context-blind sibling; SearchCtx carries the deadline.
func (m *Model) Search(q string) int { return len(q) }

func (m *Model) SearchCtx(ctx context.Context, q string) int { return len(q) }

// Run / RunCtx are package-level siblings.
func Run(n int) int { return n }

func RunCtx(ctx context.Context, n int) int { return n }

// freshRoot severs the caller's deadline twice over.
func freshRoot(m *Model, q string) int {
	ctx := context.Background() // want `context\.Background severs the caller's deadline in a serving path`
	return m.SearchCtx(ctx, q)
}

// freshTODO is the TODO flavor.
func freshTODO(m *Model, q string) int {
	return m.SearchCtx(context.TODO(), q) // want `context\.TODO severs the caller's deadline in a serving path`
}

// nilGuarded uses the accepted public-API shape: a nil context parameter
// is replaced by a root. No finding.
func nilGuarded(ctx context.Context, m *Model, q string) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return m.SearchCtx(ctx, q)
}

// executorRoot is a deliberate root, and really creates one: waived.
//
//boss:ctx-root the executor daemon outlives every request context.
func executorRoot(m *Model, q string) int {
	return m.SearchCtx(context.Background(), q)
}

// staleRoot carries the waiver but creates no root context.
//
//boss:ctx-root left behind after the refactor.
func staleRoot(ctx context.Context, m *Model, q string) int { // want `stale //boss:ctx-root marker: staleRoot creates no root context`
	return m.SearchCtx(ctx, q)
}

// dropsSibling holds a context but calls the context-blind method.
func dropsSibling(ctx context.Context, m *Model, q string) int {
	return m.Search(q) // want `call to Search drops the caller's context: context-aware sibling SearchCtx exists`
}

// dropsPkgSibling holds a context but calls the context-blind function.
func dropsPkgSibling(ctx context.Context, n int) int {
	return Run(n) // want `call to Run drops the caller's context: context-aware sibling RunCtx exists`
}

// threaded calls the context-aware forms: no findings.
func threaded(ctx context.Context, m *Model, q string) int {
	return m.SearchCtx(ctx, q) + RunCtx(ctx, 1)
}

// blindCaller has no context parameter, so the sibling rule does not
// apply (there is nothing to thread).
func blindCaller(m *Model, q string) int {
	return m.Search(q)
}

// sleeps blocks uncancellably in a serving path.
func sleeps(ctx context.Context) {
	time.Sleep(time.Millisecond) // want `time\.Sleep in a serving path cannot be cancelled`
}

// spinsBlind retries forever without observing cancellation.
func spinsBlind(ctx context.Context, m *Model, q string) int {
	for { // want `unbounded loop in spinsBlind cannot observe cancellation`
		if m.SearchCtx(ctx, q) > 0 {
			return 1
		}
	}
}

// spinsAware checks ctx.Err every iteration: no finding.
func spinsAware(ctx context.Context, m *Model, q string) int {
	for {
		if ctx.Err() != nil {
			return 0
		}
		if m.SearchCtx(ctx, q) > 0 {
			return 1
		}
	}
}

// boundedLoop has a condition, so rule 4 does not apply.
func boundedLoop(ctx context.Context, m *Model, q string) int {
	total := 0
	for i := 0; i < 3; i++ {
		total += m.SearchCtx(ctx, q)
	}
	return total
}

// hedged is the hedged-dispatch shape done right: both attempts derive
// from the caller's context via WithCancel, the loser is cancelled, and
// results travel over cap-1 buffered channels. No findings.
func hedged(ctx context.Context, m *Model, q string) int {
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	pch := make(chan int, 1)
	go func() { pch <- m.SearchCtx(pctx, q) }()
	bctx, bcancel := context.WithCancel(ctx)
	defer bcancel()
	bch := make(chan int, 1)
	go func() { bch <- m.SearchCtx(bctx, q) }()
	select {
	case r := <-pch:
		bcancel()
		return r
	case r := <-bch:
		pcancel()
		return r
	}
}

// hedgedSevered spawns its backup from a fresh root: cancelling the
// request no longer cancels the backup, which keeps charging the
// backend after the caller has gone.
func hedgedSevered(ctx context.Context, m *Model, q string) int {
	pch := make(chan int, 1)
	go func() { pch <- m.SearchCtx(ctx, q) }()
	bctx := context.Background() // want `context\.Background severs the caller's deadline in a serving path`
	bch := make(chan int, 1)
	go func() { bch <- m.SearchCtx(bctx, q) }()
	select {
	case r := <-pch:
		return r
	case r := <-bch:
		return r
	}
}

// hedgedBlindWait drains hedge results forever without ever observing
// cancellation: a runner that never delivers wedges the wait.
func hedgedBlindWait(ctx context.Context, results chan int) int {
	for { // want `unbounded loop in hedgedBlindWait cannot observe cancellation`
		if r := <-results; r > 0 {
			return r
		}
	}
}
