package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// EscapeDiag is one compiler escape-analysis diagnostic: the gc compiler
// decided a value allocates on the heap at this position.
type EscapeDiag struct {
	File    string // absolute path
	Line    int
	Col     int
	Message string // e.g. "moved to heap: x", "&y escapes to heap"
}

// Escapes drives `go build -gcflags=-m` over the program's package
// patterns and returns the heap-allocation diagnostics, keyed by absolute
// file path with per-file position order preserved. The result is the
// compiler's ground truth — unlike hotpathalloc's syntactic bans, these
// are the allocations the generated code actually performs.
//
// The build runs at most once per Program (memoized); it reuses the build
// cache, so after the initial compile the incremental cost is one cached
// rebuild of the flagged packages.
func (p *Program) Escapes() (map[string][]EscapeDiag, error) {
	p.escOnce.Do(func() {
		p.escapes, p.escErr = loadEscapes(p.Dir, p.Patterns)
	})
	return p.escapes, p.escErr
}

// loadEscapes runs the compiler and parses its -m output.
func loadEscapes(dir string, patterns []string) (map[string][]EscapeDiag, error) {
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out // -m diagnostics arrive on stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go build -gcflags=-m: %v\n%s", err, out.String())
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}

	diags := make(map[string][]EscapeDiag)
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		d, ok := parseEscapeLine(sc.Text(), absDir)
		if !ok {
			continue
		}
		diags[d.File] = append(diags[d.File], d)
	}
	return diags, sc.Err()
}

// parseEscapeLine extracts a heap diagnostic from one `file:line:col: msg`
// compiler line; inlining chatter and "does not escape" lines are
// dropped.
func parseEscapeLine(line, absDir string) (EscapeDiag, bool) {
	line = strings.TrimSpace(line)
	// file.go:LINE:COL: message
	i := strings.Index(line, ".go:")
	if i < 0 {
		return EscapeDiag{}, false
	}
	file := line[:i+3]
	rest := line[i+4:]
	j := strings.IndexByte(rest, ':')
	if j < 0 {
		return EscapeDiag{}, false
	}
	ln, err := strconv.Atoi(rest[:j])
	if err != nil {
		return EscapeDiag{}, false
	}
	rest = rest[j+1:]
	j = strings.IndexByte(rest, ':')
	if j < 0 {
		return EscapeDiag{}, false
	}
	col, err := strconv.Atoi(rest[:j])
	if err != nil {
		return EscapeDiag{}, false
	}
	msg := strings.TrimSpace(rest[j+1:])
	if !strings.Contains(msg, "moved to heap") &&
		(!strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "does not escape")) {
		return EscapeDiag{}, false
	}
	if !filepath.IsAbs(file) {
		file = filepath.Join(absDir, file)
	}
	return EscapeDiag{File: file, Line: ln, Col: col, Message: msg}, true
}
