package hotpathescape_test

import (
	"testing"

	"boss/internal/analysis/analysistest"
	"boss/internal/analysis/hotpathescape"
)

func TestHotPathEscape(t *testing.T) {
	analysistest.Run(t, "testdata/src", hotpathescape.Analyzer)
}
