// Package hotpathescape verifies //boss:hotpath functions against the
// compiler's own escape analysis. hotpathalloc bans the syntactic
// allocation shapes (make, new, composite literals, string concat), but
// the compiler is the ground truth: a value can escape to the heap with
// no banned syntax in sight — a pointer stored through an interface, a
// closure capturing a loop variable, a slice passed to a callee the
// inliner gives up on.
//
// The analyzer runs `go build -gcflags=-m` over the module once per
// Load (cached on the Program) and diffs the "escapes to heap" /
// "moved to heap" diagnostics against the line ranges of every
// //boss:hotpath function. A diagnostic inside a hot function is a
// finding unless the offending line carries a //boss:escape-ok waiver
// (same line or the line above — for escapes on cold branches inside a
// hot function). As with every marker, the waiver is verified: a
// //boss:escape-ok line with no compiler diagnostic on it is stale and
// reported, so fixed escapes shed their waivers.
package hotpathescape

import (
	"go/ast"
	"go/token"

	"boss/internal/analysis"
)

// Analyzer is the hotpathescape check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathescape",
	Doc:  "diff the compiler's escape analysis (-gcflags=-m) against //boss:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Collect hot functions and waiver lines first so packages with
	// neither skip the (cached) compiler run entirely.
	type hotFn struct {
		decl *ast.FuncDecl
		file string
		lo   int // first line of the declaration
		hi   int // last line of the body
	}
	var hot []hotFn
	type fileMarks struct {
		f    *ast.File
		name string
	}
	var marked []fileMarks
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.FuncHasMarker(fn, analysis.MarkerHotPath) {
				continue
			}
			pos := pass.Fset.Position(fn.Pos())
			end := pass.Fset.Position(fn.Body.End())
			hot = append(hot, hotFn{decl: fn, file: pos.Filename, lo: pos.Line, hi: end.Line})
		}
		if ms := analysis.LineMarkers(f, analysis.MarkerEscapeOK); len(ms) > 0 {
			name := pass.Fset.Position(f.Pos()).Filename
			marked = append(marked, fileMarks{f: f, name: name})
		}
	}
	if len(hot) == 0 && len(marked) == 0 {
		return nil
	}

	escapes, err := pass.Prog.Escapes()
	if err != nil {
		return err
	}

	for _, h := range hot {
		for _, d := range escapes[h.file] {
			if d.Line < h.lo || d.Line > h.hi {
				continue
			}
			if waivedAt(pass, h.decl, d.Line) {
				continue
			}
			pass.Reportf(posAtLine(pass, h.decl, d.Line), "%s is //boss:hotpath but the compiler reports an escape at line %d: %s (restructure to keep the value on the stack, or waive a cold branch with //boss:escape-ok)",
				h.decl.Name.Name, d.Line, d.Message)
		}
	}

	// Stale //boss:escape-ok markers: a waiver line (or the line below,
	// its attachment target) with no compiler diagnostic left to waive.
	for _, fm := range marked {
		diagLines := make(map[int]bool)
		for _, d := range escapes[fm.name] {
			diagLines[d.Line] = true
		}
		for _, p := range analysis.LineMarkers(fm.f, analysis.MarkerEscapeOK) {
			line := pass.Fset.Position(p).Line
			if diagLines[line] || diagLines[line+1] {
				continue
			}
			pass.Reportf(p, "stale //boss:escape-ok marker: the compiler reports no escape on this line; remove the waiver")
		}
	}
	return nil
}

// waivedAt reports whether the given source line inside fn carries a
// //boss:escape-ok marker (same line or line above).
func waivedAt(pass *analysis.Pass, fn *ast.FuncDecl, line int) bool {
	for _, f := range pass.Files {
		if f.Pos() <= fn.Pos() && fn.Pos() < f.End() {
			return analysis.HasLineMarker(pass.Fset, f, line, analysis.MarkerEscapeOK)
		}
	}
	return false
}

// posAtLine returns a position on the reported line inside fn, so the
// finding points at the escaping statement rather than the function
// header. Falls back to the function position when no statement starts
// on that line.
func posAtLine(pass *analysis.Pass, fn *ast.FuncDecl, line int) (pos token.Pos) {
	pos = fn.Pos()
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil || pos != fn.Pos() {
			return false
		}
		if pass.Fset.Position(n.Pos()).Line == line {
			pos = n.Pos()
			return false
		}
		return true
	})
	return pos
}
