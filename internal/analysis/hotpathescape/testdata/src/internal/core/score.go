// Package core exercises hotpathescape against the real compiler: the
// fixture is built with -gcflags=-m, so every escape below is one the gc
// escape analysis actually reports.
package core

// Result is a score record; pointers to it escape when they outlive the
// frame.
type Result struct {
	ID    int
	Score float64
}

// sink keeps waived pointers reachable so the compiler cannot elide the
// escape.
var sink *Result

// hotLeaks returns a pointer to a stack local: the classic escape the
// syntactic checks cannot see.
//
//boss:hotpath per-document scoring step.
func hotLeaks(id int) *Result {
	r := Result{ID: id} // want `hotLeaks is //boss:hotpath but the compiler reports an escape`
	return &r
}

// hotWaived escapes only on its cold branch, and the branch carries a
// verified waiver.
//
//boss:hotpath hit path; the miss branch below is cold.
func hotWaived(id int, cold bool) *Result {
	if cold {
		r := &Result{ID: id} //boss:escape-ok cold miss branch, amortized by the cache
		sink = r
		return r
	}
	return nil
}

// coldOnly allocates nothing; its waiver outlived whatever escape it once
// excused.
func coldOnly(id int) int {
	x := id * 2 //boss:escape-ok left behind by a refactor
	// want-1 `stale //boss:escape-ok marker`
	return x
}

// coldEscapes allocates on the heap but is not //boss:hotpath, so the
// compiler diagnostic is not a finding.
func coldEscapes(id int) *Result {
	return &Result{ID: id}
}
