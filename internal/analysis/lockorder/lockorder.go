// Package lockorder checks the mutex discipline of the concurrent
// serving packages (cache, pool, front):
//
//  1. pairing: a function that acquires a mutex class must release it in
//     the same function (directly or by defer) — Lock pairs with Unlock,
//     RLock with RUnlock. Handing a held lock to a callee or caller is
//     how the serving tier would deadlock under load shedding;
//
//  2. double acquisition: acquiring a class while an acquisition of the
//     same class is still outstanding in the same function (sync.Mutex
//     is not reentrant);
//
//  3. ordering: the analyzer builds the module-wide acquisition-order
//     graph — an edge A → B for every site that acquires B (directly or
//     through any chain of statically resolved callees) while holding A —
//     and reports every cycle. Two goroutines taking A and B in opposite
//     orders is the textbook deadlock, and it is invisible to the race
//     detector until the schedule actually interleaves.
//
// Classes are (type, field) pairs — "pool.shardState.mu" — so the
// GOMAXPROCS-sharded cache mutexes form one class, and an edge within a
// class (holding one shard's mutex while taking another's) is reported
// as a cycle of length one unless the code never does it.
//
// Held-lock tracking is a linear, source-order scan per function:
// releases in early-return branches under-approximate the held set,
// which errs on the quiet side (no false edges). The whole-module pieces
// (graph, cycles) run once per Load, on the first in-scope package.
package lockorder

import (
	"go/token"
	"sort"

	"boss/internal/analysis"
)

// ScopePackages are the packages whose mutexes participate.
var ScopePackages = []string{
	"internal/cache",
	"internal/pool",
	"internal/front",
}

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "require same-function mutex pairing and an acyclic module-wide lock acquisition order in cache/pool/front",
	Run:  run,
}

// edge is one observed acquisition-order constraint: to was acquired
// while from was held.
type edge struct {
	from, to string
	pos      token.Pos // the acquiring site
	via      string    // callee name when the acquisition is indirect
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathHasAny(pass.Pkg.Path(), ScopePackages) {
		return nil
	}
	// The graph spans packages; build and report it exactly once per
	// Load, from the first in-scope package in the program's stable
	// package order.
	for _, pkg := range pass.Prog.Pkgs {
		if analysis.PkgPathHasAny(pkg.Pkg.Path(), ScopePackages) {
			if pkg != pass.P {
				return nil
			}
			break
		}
	}

	// Deterministic function order: sort summaries by key.
	var keys []string
	for key, fi := range pass.Prog.Funcs {
		if analysis.PkgPathHasAny(fi.Pkg.Pkg.Path(), ScopePackages) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)

	var edges []edge
	for _, key := range keys {
		edges = append(edges, checkFunc(pass, pass.Prog.Funcs[key])...)
	}
	reportCycles(pass, edges)
	return nil
}

// event interleaves a function's lock operations and call sites in
// source order.
type event struct {
	pos  token.Pos
	op   *analysis.LockOp // nil for a call site
	call *analysis.CallSite
}

// checkFunc reports pairing violations and returns the function's
// acquisition-order edges.
func checkFunc(pass *analysis.Pass, fi *analysis.FuncInfo) []edge {
	// Pairing: every acquired class needs its matching release somewhere
	// in this function.
	released := make(map[string]bool)
	for i := range fi.Locks {
		op := &fi.Locks[i]
		if !op.Acquires() {
			released[op.Op+":"+op.Class] = true
		}
	}
	for i := range fi.Locks {
		op := &fi.Locks[i]
		if op.Acquires() && !released[op.ReleaseOf()+":"+op.Class] {
			pass.Reportf(op.Call.Pos(), "%s of %s is never %sed in %s: release in the acquiring function (defer the unlock next to the lock)",
				op.Op, op.Class, op.ReleaseOf(), fi.Obj.Name())
		}
	}

	// Source-order scan with a held multiset.
	var events []event
	for i := range fi.Locks {
		events = append(events, event{pos: fi.Locks[i].Call.Pos(), op: &fi.Locks[i]})
	}
	for i := range fi.Calls {
		events = append(events, event{pos: fi.Calls[i].Call.Pos(), call: &fi.Calls[i]})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]int)
	var order []string // held classes in acquisition order (for messages)
	var edges []edge
	for _, ev := range events {
		if ev.op != nil {
			op := ev.op
			switch {
			case op.Acquires() && !op.Deferred:
				// A self-edge (h == op.Class) is reported by the cycle
				// pass as a length-one cycle: double acquisition.
				for _, h := range order {
					if held[h] <= 0 {
						continue
					}
					edges = append(edges, edge{from: h, to: op.Class, pos: op.Call.Pos()})
				}
				held[op.Class]++
				order = append(order, op.Class)
			case !op.Acquires() && !op.Deferred:
				if held[op.Class] > 0 {
					held[op.Class]--
					for i := len(order) - 1; i >= 0; i-- {
						if order[i] == op.Class {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
				}
				// Deferred releases keep the class held to scan end.
			}
			continue
		}
		// Call site while holding locks: the callee's transitive
		// acquisitions happen under everything currently held.
		if len(order) == 0 {
			continue
		}
		acq := pass.Prog.TransitiveLocks(ev.call.Key)
		if len(acq) == 0 {
			continue
		}
		var acqSorted []string
		for c := range acq {
			acqSorted = append(acqSorted, c)
		}
		sort.Strings(acqSorted)
		for _, h := range order {
			if held[h] <= 0 {
				continue
			}
			for _, c := range acqSorted {
				edges = append(edges, edge{from: h, to: c, pos: ev.call.Call.Pos(), via: ev.call.Callee.Name()})
			}
		}
	}
	return edges
}

// reportCycles finds cycles in the acquisition-order graph and reports
// one finding per cycle at the closing edge's site.
func reportCycles(pass *analysis.Pass, edges []edge) {
	adj := make(map[string][]edge)
	var nodes []string
	seen := make(map[string]bool)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
		for _, n := range []string{e.from, e.to} {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)
	for n := range adj {
		es := adj[n]
		sort.Slice(es, func(i, j int) bool {
			if es[i].to != es[j].to {
				return es[i].to < es[j].to
			}
			return es[i].pos < es[j].pos
		})
	}

	const (
		white = iota
		gray
		black
	)
	color := make(map[string]int)
	var stack []edge
	reported := make(map[string]bool)

	var dfs func(n string)
	dfs = func(n string) {
		color[n] = gray
		for _, e := range adj[n] {
			if color[e.to] == gray {
				// Reconstruct the cycle from the stack.
				cycle := []edge{e}
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].from == e.to {
						cycle = append([]edge{}, stack[i:]...)
						cycle = append(cycle, e)
						break
					}
				}
				reportCycle(pass, cycle, reported)
				continue
			}
			if color[e.to] == white {
				stack = append(stack, e)
				dfs(e.to)
				stack = stack[:len(stack)-1]
			}
		}
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
}

func reportCycle(pass *analysis.Pass, cycle []edge, reported map[string]bool) {
	if len(cycle) == 0 {
		return
	}
	// Canonical signature so each cycle reports once regardless of entry.
	var classes []string
	for _, e := range cycle {
		classes = append(classes, e.from)
	}
	sort.Strings(classes)
	sig := ""
	for _, c := range classes {
		sig += c + ";"
	}
	if reported[sig] {
		return
	}
	reported[sig] = true

	closing := cycle[len(cycle)-1]
	if len(cycle) == 1 && closing.from == closing.to {
		via := ""
		if closing.via != "" {
			via = " through " + closing.via
		}
		pass.Reportf(closing.pos, "%s is acquired%s while already held: sync mutexes are not reentrant and same-class instances need a fixed order", closing.from, via)
		return
	}
	path := ""
	for _, e := range cycle {
		path += e.from + " -> "
	}
	path += closing.to
	pass.Reportf(closing.pos, "lock order cycle: %s; this edge closes the cycle — acquire classes in one global order", path)
}
