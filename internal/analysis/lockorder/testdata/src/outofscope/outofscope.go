// Package outofscope is not a cache/pool/front package: lockorder does
// not look at its mutexes, even obviously unpaired ones.
package outofscope

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

// Hold never releases, but the package is out of scope.
func Hold(b *box) int {
	b.mu.Lock()
	return b.n
}
