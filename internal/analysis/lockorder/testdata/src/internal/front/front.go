// Package front holds its own mutex while calling into pool — a benign
// cross-package acquisition edge (no reverse direction exists).
package front

import (
	"sync"

	"fixtures/internal/pool"
)

type Door struct {
	mu sync.Mutex
	n  int
}

// Admit acquires the door mutex, then pool's gate through the exported
// helper: edge front.Door.mu -> pool.Gate.mu, acyclic.
func Admit(d *Door, g *pool.Gate) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
	pool.Acquire(g)
}
