// Package pool exercises lockorder: pairing, double acquisition, and the
// module-wide acquisition-order cycle.
package pool

import "sync"

type hub struct {
	mua sync.Mutex
	mub sync.Mutex
}

// lockBoth takes a before b — one direction of the order.
func lockBoth(h *hub) {
	h.mua.Lock()
	defer h.mua.Unlock()
	h.mub.Lock()
	defer h.mub.Unlock()
}

// grabA acquires and releases a; its transitive lock set feeds the
// interprocedural edge below.
func grabA(h *hub) {
	h.mua.Lock()
	defer h.mua.Unlock()
}

// lockViaHelper takes a (through grabA) while holding b: with lockBoth's
// a-before-b this closes a cycle.
func lockViaHelper(h *hub) {
	h.mub.Lock()
	defer h.mub.Unlock()
	grabA(h) // want `lock order cycle`
}

// sequential releases a before taking b: held-set scan records no edge,
// so this direction does not conflict with lockBoth.
func sequential(h *hub) {
	h.mua.Lock()
	h.mua.Unlock()
	h.mub.Lock()
	h.mub.Unlock()
}

type Gate struct {
	mu sync.Mutex
	n  int
}

// doubleLock re-acquires a held, non-reentrant mutex.
func doubleLock(g *Gate) {
	g.mu.Lock()
	g.mu.Lock() // want `is acquired while already held`
	g.n++
	g.mu.Unlock()
	g.mu.Unlock()
}

type leaky struct {
	mu sync.Mutex
	n  int
}

// holdForever acquires without any release in the function.
func holdForever(l *leaky) int {
	l.mu.Lock() // want `Lock of fixtures/internal/pool\.leaky\.mu is never Unlocked in holdForever`
	return l.n
}

type rwbox struct {
	mu sync.RWMutex
	v  int
}

// readLocked pairs RLock with RUnlock: clean.
func readLocked(b *rwbox) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.v
}

// Acquire is the exported entry the front fixture calls while holding its
// own mutex, creating a benign cross-package edge.
func Acquire(g *Gate) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}
