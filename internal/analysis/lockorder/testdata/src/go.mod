module fixtures

go 1.22
