package lockorder_test

import (
	"testing"

	"boss/internal/analysis/analysistest"
	"boss/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src", lockorder.Analyzer)
}
