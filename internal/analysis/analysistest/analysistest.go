// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract.
//
// Fixtures live under the analyzer's testdata/src directory, which is its
// own Go module (the go tool ignores testdata directories, so fixture code
// — which intentionally violates the invariants — never reaches the real
// build). A fixture line that should be flagged carries a trailing comment:
//
//	rand.Intn(4) // want `unseeded`
//
// The backquoted string is a regular expression matched against the
// diagnostic message; multiple expectations may follow one want. Every
// diagnostic must match a want on its line and every want must be matched,
// otherwise the test fails.
//
// A diagnostic reported at a comment's own position (a stale or dangling
// marker) cannot share its line with a second // comment, so a want may
// carry a signed line offset that moves the expectation relative to the
// comment's line:
//
//	//boss:hotpath left behind by a refactor
//	// want-1 `dangling`
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"boss/internal/analysis"
)

// wantRe extracts the expectation expressions from a // want comment.
// Both `re` and "re" quoting forms are accepted.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// wantOffsetRe matches the optional signed line offset after "want".
var wantOffsetRe = regexp.MustCompile(`^([+-]\d+)`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture module rooted at dir (conventionally "testdata/src"),
// applies the analyzer to the packages matched by patterns (default ./...),
// and reports mismatches through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	prog, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures from %s: %v", dir, err)
	}
	diags, err := prog.Run([]*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, fileWants(t, pkg, f)...)
		}
	}

	for _, d := range diags {
		posn := d.Posn(prog.Fset())
		matched := false
		for _, w := range wants {
			if w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// fileWants collects the // want expectations of one fixture file.
func fileWants(t *testing.T, pkg *analysis.Package, f *ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, g := range f.Comments {
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, isWant := strings.CutPrefix(text, "want")
			if !isWant || (rest != "" && rest[0] != ' ' && rest[0] != '+' && rest[0] != '-') {
				continue
			}
			posn := pkg.Fset.Position(c.Pos())
			if m := wantOffsetRe.FindStringSubmatch(rest); m != nil {
				off, err := strconv.Atoi(m[1])
				if err != nil {
					t.Errorf("%s: bad want offset in %s", posn, c.Text)
					continue
				}
				posn.Line += off
				rest = rest[len(m[0]):]
			}
			exprs := wantRe.FindAllStringSubmatch(rest, -1)
			if len(exprs) == 0 {
				t.Errorf("%s: malformed want comment: %s", posn, c.Text)
				continue
			}
			for _, m := range exprs {
				src := m[1]
				if src == "" {
					src = m[2]
				}
				re, err := regexp.Compile(src)
				if err != nil {
					t.Errorf("%s: bad want regexp %q: %v", posn, src, err)
					continue
				}
				wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
			}
		}
	}
	return wants
}
