package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// This file is the shared cross-package layer under the analyzer suite: a
// type-aware call graph plus one summary per declared function, built once
// per Load and consumed by every analyzer. PR 3's analyzers were
// per-function AST walks; the serving-path invariants PRs 4–7 introduced
// (charge replay, context propagation, lock ordering, goroutine exits)
// are cross-function properties, so the facts they need — who calls whom,
// which mem.Category charges a call tree records, which mutex classes a
// call tree acquires — are extracted here exactly once and memoized.

// Program is the whole loaded module: every target package, plus
// per-function summaries and the call graph over them. Analyzers reach it
// through Pass.Prog.
type Program struct {
	// Dir and Patterns are the loader arguments, retained so the
	// compiler-diagnostics pass (Escapes) can re-drive the go tool over
	// exactly the same package set.
	Dir      string
	Patterns []string
	// Pkgs are the matched packages in stable ImportPath order.
	Pkgs []*Package
	// Funcs maps FuncKey strings to summaries for every function declared
	// in the loaded packages.
	Funcs map[string]*FuncInfo

	chargeMemo map[string]map[string]bool
	lockMemo   map[string]map[string]bool

	escOnce sync.Once
	escErr  error
	escapes map[string][]EscapeDiag
}

// FuncInfo is the per-function summary: resolved static call sites plus
// the facts the serving-path analyzers consume.
type FuncInfo struct {
	Key  string
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// CtxParam is the function's first context.Context parameter, or nil.
	CtxParam *types.Var
	// Calls are the statically resolvable call sites, in source order.
	Calls []CallSite
	// Charges are the direct simulated-SCM charge calls: perf.Metrics
	// methods taking a mem.Category argument.
	Charges []Charge
	// Locks are the direct mutex operations, in source order.
	Locks []LockOp
	// Gos are the function's go statements, in source order.
	Gos []*ast.GoStmt
}

// CallSite is one statically resolved call.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
	// Key is FuncKey(Callee), precomputed for summary lookups.
	Key string
}

// Charge is one call that records a simulated memory-system charge: a
// method on perf.Metrics whose signature takes a mem.Category parameter.
type Charge struct {
	Call   *ast.CallExpr
	Method string
	// Category is the mem.Category constant's name (e.g. "CatLoadDoc"),
	// or "<dynamic>" when the argument is not a named constant.
	Category string
}

// DynamicCategory marks a charge whose category argument could not be
// resolved to a named constant.
const DynamicCategory = "<dynamic>"

// LockOp is one direct mutex operation.
type LockOp struct {
	Call *ast.CallExpr
	// Class names the mutex acquisition class: "pkgpath.Type.field" for a
	// mutex field, "pkgpath.var" for a package-level mutex, or the
	// variable name for a local. Two operations with equal Class strings
	// contend on the same (sharded) mutex domain.
	Class string
	// Op is "Lock", "Unlock", "RLock", or "RUnlock".
	Op string
	// Deferred reports the op appears in a defer statement.
	Deferred bool
}

// Acquires reports whether the op takes the mutex (Lock or RLock).
func (o LockOp) Acquires() bool { return o.Op == "Lock" || o.Op == "RLock" }

// ReleaseOf returns the op name that releases this acquisition.
func (o LockOp) ReleaseOf() string {
	if o.Op == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// FuncKey returns a stable cross-package identity for fn. Source-checked
// packages and gc-export-data imports materialize distinct types.Func
// objects for the same function, so the call graph is keyed by this
// string instead of by object pointer.
func FuncKey(fn *types.Func) string {
	var b strings.Builder
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if n, ok := t.(*types.Named); ok {
			if pkg := fn.Pkg(); pkg != nil {
				b.WriteString(pkg.Path())
			}
			b.WriteString(".(")
			b.WriteString(ptr)
			b.WriteString(n.Obj().Name())
			b.WriteString(").")
			b.WriteString(fn.Name())
			return b.String()
		}
	}
	if pkg := fn.Pkg(); pkg != nil {
		b.WriteString(pkg.Path())
		b.WriteString(".")
	}
	b.WriteString(fn.Name())
	return b.String()
}

// InfoFor returns the summary for fn's declaration, or nil when fn was
// not declared in a loaded package (stdlib, indirect, interface method).
func (p *Program) InfoFor(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return p.Funcs[FuncKey(fn)]
}

// InfoForDecl returns the summary for a declaration in pkg.
func (p *Program) InfoForDecl(pkg *Package, decl *ast.FuncDecl) *FuncInfo {
	obj, ok := pkg.TypesInfo.Defs[decl.Name].(*types.Func)
	if !ok {
		return nil
	}
	return p.Funcs[FuncKey(obj)]
}

// buildProgram constructs the summary layer over freshly loaded packages.
func buildProgram(dir string, patterns []string, pkgs []*Package) *Program {
	p := &Program{
		Dir:        dir,
		Patterns:   patterns,
		Pkgs:       pkgs,
		Funcs:      make(map[string]*FuncInfo),
		chargeMemo: make(map[string]map[string]bool),
		lockMemo:   make(map[string]map[string]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				info := summarize(pkg, fn, obj)
				p.Funcs[info.Key] = info
			}
		}
	}
	return p
}

// summarize extracts one function's facts.
func summarize(pkg *Package, decl *ast.FuncDecl, obj *types.Func) *FuncInfo {
	ti := pkg.TypesInfo
	info := &FuncInfo{
		Key:  FuncKey(obj),
		Obj:  obj,
		Decl: decl,
		Pkg:  pkg,
	}
	if sig, ok := obj.Type().(*types.Signature); ok {
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			if IsContextType(params.At(i).Type()) {
				info.CtxParam = params.At(i)
				break
			}
		}
	}

	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			info.Gos = append(info.Gos, x)
		case *ast.CallExpr:
			callee, _ := CalleeObj(ti, x).(*types.Func)
			if callee != nil {
				info.Calls = append(info.Calls, CallSite{Call: x, Callee: callee, Key: FuncKey(callee)})
				if ch, ok := chargeOf(ti, x, callee); ok {
					info.Charges = append(info.Charges, ch)
				}
				if op, ok := lockOf(ti, x, callee); ok {
					op.Deferred = deferred[x]
					info.Locks = append(info.Locks, op)
				}
			}
		}
		return true
	})
	return info
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isCategoryType reports whether t is the memory model's Category enum
// (any package whose path contains the internal/mem segment, so fixture
// modules that replicate the package shape participate too).
func isCategoryType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Category" && obj.Pkg() != nil && PkgPathHas(obj.Pkg().Path(), "internal/mem")
}

// chargeOf recognizes simulated-charge calls: methods declared in a
// internal/perf package with at least one mem.Category parameter. The
// category argument resolves to the constant's name when it is one.
func chargeOf(ti *types.Info, call *ast.CallExpr, callee *types.Func) (Charge, bool) {
	if callee.Pkg() == nil || !PkgPathHas(callee.Pkg().Path(), "internal/perf") {
		return Charge{}, false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return Charge{}, false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if !isCategoryType(params.At(i).Type()) {
			continue
		}
		ch := Charge{Call: call, Method: callee.Name(), Category: DynamicCategory}
		if i < len(call.Args) {
			if c := constName(ti, call.Args[i]); c != "" {
				ch.Category = c
			}
		}
		return ch, true
	}
	return Charge{}, false
}

// constName resolves an expression to the name of the named constant it
// denotes, or "".
func constName(ti *types.Info, e ast.Expr) string {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	if c, ok := ti.Uses[id].(*types.Const); ok {
		return c.Name()
	}
	return ""
}

// lockOf recognizes sync.Mutex / sync.RWMutex method calls and resolves
// the acquisition class of the receiver.
func lockOf(ti *types.Info, call *ast.CallExpr, callee *types.Func) (LockOp, bool) {
	name := callee.Name()
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return LockOp{}, false
	}
	if callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return LockOp{}, false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return LockOp{}, false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	n, ok := rt.(*types.Named)
	if !ok || (n.Obj().Name() != "Mutex" && n.Obj().Name() != "RWMutex") {
		return LockOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return LockOp{}, false
	}
	class := lockClass(ti, sel)
	if class == "" {
		return LockOp{}, false
	}
	// Normalize TryLock to its acquiring form for pairing purposes.
	op := strings.TrimPrefix(name, "Try")
	return LockOp{Call: call, Class: class, Op: op}, true
}

// lockClass names the mutex the selector resolves to. For s.mu.Lock() the
// class is the mu field qualified by the owning struct's type; for an
// embedded mutex (s.Lock()) it is the embedded field; for a package-level
// var it is the var's qualified name.
func lockClass(ti *types.Info, sel *ast.SelectorExpr) string {
	// Embedded case: the method selector itself traverses fields.
	if s, ok := ti.Selections[sel]; ok && len(s.Index()) > 1 {
		t := s.Recv()
		var owner string
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			owner = qualify(n.Obj())
		}
		idx := s.Index()
		st, ok := derefStruct(t)
		if !ok {
			return ""
		}
		var field *types.Var
		for _, i := range idx[:len(idx)-1] {
			field = st.Field(i)
			st, ok = derefStruct(field.Type())
			if !ok {
				break
			}
		}
		if field != nil {
			return owner + "." + field.Name()
		}
		return ""
	}
	// Explicit field or variable: resolve the receiver expression x in
	// x.Lock().
	recv := ast.Unparen(sel.X)
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		if f, ok := ti.Uses[x.Sel].(*types.Var); ok && f.IsField() {
			owner := ""
			if tv, ok := ti.Types[x.X]; ok {
				t := tv.Type
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if n, ok := t.(*types.Named); ok {
					owner = qualify(n.Obj())
				}
			}
			return owner + "." + f.Name()
		}
	case *ast.Ident:
		if v, ok := ti.Uses[x].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
			return v.Name()
		}
	}
	return ""
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

func qualify(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// TransitiveCharges returns the set of mem.Category constant names the
// function charges, directly or through any chain of statically resolved
// callees declared in the loaded packages. Memoized; cycles in the call
// graph are handled by fixing the in-progress set to its direct charges.
func (p *Program) TransitiveCharges(key string) map[string]bool {
	if memo, ok := p.chargeMemo[key]; ok {
		return memo
	}
	info := p.Funcs[key]
	if info == nil {
		return nil
	}
	// Seed the memo before recursing so cycles terminate; the seeded map
	// is mutated in place, so mutual recursion converges to the union of
	// everything reachable (each edge is walked once).
	set := make(map[string]bool)
	p.chargeMemo[key] = set
	for _, ch := range info.Charges {
		set[ch.Category] = true
	}
	for _, cs := range info.Calls {
		for c := range p.TransitiveCharges(cs.Key) {
			set[c] = true
		}
	}
	return set
}

// TransitiveLocks returns the set of mutex classes the function acquires,
// directly or through statically resolved callees.
func (p *Program) TransitiveLocks(key string) map[string]bool {
	if memo, ok := p.lockMemo[key]; ok {
		return memo
	}
	info := p.Funcs[key]
	if info == nil {
		return nil
	}
	set := make(map[string]bool)
	p.lockMemo[key] = set
	for _, op := range info.Locks {
		if op.Acquires() {
			set[op.Class] = true
		}
	}
	for _, cs := range info.Calls {
		for c := range p.TransitiveLocks(cs.Key) {
			set[c] = true
		}
	}
	return set
}

// SortedSet renders a set as a sorted, comma-separated list (for
// deterministic diagnostics).
func SortedSet(set map[string]bool) string {
	if len(set) == 0 {
		return "(none)"
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	// Insertion sort: the sets are tiny and this avoids importing sort
	// just for diagnostics.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return strings.Join(keys, ", ")
}

// FileOf returns the syntax file of pkg containing pos, or nil.
func (pkg *Package) FileOf(pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
