// Package hotpathalloc keeps annotated hot functions allocation-free.
//
// A function whose doc comment carries //boss:hotpath is checked for the
// constructs PR 2 spent its time removing from the per-posting loops —
// every one of them either allocates or defeats the compiler's
// devirtualization/inlining on this code base:
//
//   - sort.Slice / sort.SliceStable / sort.Sort / sort.Stable (closure +
//     interface boxing per call; use an insertion sort over the bounded
//     stream set, see core.sortByDoc);
//   - any call into fmt (interface boxing of every operand; outline cold
//     error construction into an unannotated helper);
//   - string concatenation (allocates the result);
//   - function literals (closure environments allocate when captured
//     variables escape);
//   - conversion of a concrete non-pointer-shaped value to an interface
//     type (boxing allocates; pointers, maps, chans, and funcs are
//     pointer-shaped and box for free — arguments to builtin panic are
//     exempt, panicking is off the hot path by definition);
//   - append whose destination originates in the function itself (fresh
//     local, make, nil, or literal) rather than in a parameter, receiver,
//     or package-level scratch — growing caller-owned or pooled scratch
//     amortizes, growing a fresh slice allocates per call.
//
// The origin analysis for append destinations is an intraprocedural
// heuristic: a destination rooted at a local is acceptable when some
// assignment in the function roots it at a parameter, receiver, or
// package-level variable (the `buf := r.scratch[:0]` reslice idiom).
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"boss/internal/analysis"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in functions annotated //boss:hotpath",
	Run:  run,
}

// bannedSortFuncs allocate via closures and sort.Interface boxing.
var bannedSortFuncs = map[string]bool{
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		// A //boss:hotpath marker that is not a function's doc comment
		// guards nothing: its function was renamed or refactored away and
		// the code it used to protect is now unchecked.
		for _, pos := range analysis.DanglingMarkers(file, analysis.MarkerHotPath) {
			pass.Reportf(pos, "dangling //boss:hotpath marker: not attached to any function declaration, so nothing is checked; move it onto the hot function's doc comment or delete it")
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.FuncHasMarker(fn, analysis.MarkerHotPath) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure allocation in hot path")
			return false // the literal's body is not part of the hot loop
		case *ast.CallExpr:
			checkCall(pass, fn, x)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(info, x) {
				pass.Reportf(x.Pos(), "string concatenation allocates in hot path")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(info, x.Lhs[0]) {
				pass.Reportf(x.Pos(), "string concatenation allocates in hot path")
			}
			checkAssignConversions(pass, x)
		case *ast.ReturnStmt:
			checkReturnConversions(pass, fn, x)
		}
		return true
	})
}

func isString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkCall flags banned callees, interface-boxing arguments, and
// self-allocating appends.
func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	obj := analysis.CalleeObj(info, call)

	if b, ok := obj.(*types.Builtin); ok {
		if b.Name() == "append" {
			checkAppend(pass, fn, call)
		}
		return // arguments to panic/print builtins are cold or diagnostic
	}

	if f, ok := obj.(*types.Func); ok && f.Pkg() != nil {
		switch f.Pkg().Path() {
		case "fmt":
			pass.Reportf(call.Pos(), "fmt.%s in hot path (outline cold formatting into an unannotated helper)", f.Name())
			return
		case "sort":
			if bannedSortFuncs[f.Name()] {
				pass.Reportf(call.Pos(), "sort.%s allocates in hot path (use an insertion sort over the bounded set)", f.Name())
				return
			}
		}
	}

	// Explicit conversions: T(x) with T an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(info, tv.Type, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface %s boxes a concrete value in hot path", tv.Type.String())
		}
		return
	}

	// Implicit conversions at call boundaries: concrete arguments passed to
	// interface-typed parameters.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && boxes(info, pt, arg) {
			pass.Reportf(arg.Pos(), "argument boxes a concrete value into interface %s in hot path", pt.String())
		}
	}
}

// checkAssignConversions flags assignments that box a concrete RHS into an
// interface-typed LHS.
func checkAssignConversions(pass *analysis.Pass, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	info := pass.TypesInfo
	for i, lhs := range as.Lhs {
		lt, ok := info.Types[lhs]
		if !ok || lt.Type == nil {
			continue
		}
		if boxes(info, lt.Type, as.Rhs[i]) {
			pass.Reportf(as.Rhs[i].Pos(), "assignment boxes a concrete value into interface %s in hot path", lt.Type.String())
		}
	}
}

// checkReturnConversions flags returns that box concrete values into
// interface-typed results.
func checkReturnConversions(pass *analysis.Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fn.Type.Results == nil || len(ret.Results) == 0 {
		return
	}
	info := pass.TypesInfo
	var resultTypes []types.Type
	for _, field := range fn.Type.Results.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			return
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, tv.Type)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // return f() forwarding; conversions charged to f
	}
	for i, r := range ret.Results {
		if boxes(info, resultTypes[i], r) {
			pass.Reportf(r.Pos(), "return boxes a concrete value into interface %s in hot path", resultTypes[i].String())
		}
	}
}

// boxes reports whether assigning expr to target performs an allocating
// interface conversion: target is an interface, expr's type is concrete and
// not pointer-shaped, and expr is not the predeclared nil.
func boxes(info *types.Info, target types.Type, expr ast.Expr) bool {
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface:
		return false // interface-to-interface, no boxing
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false // pointer-shaped, boxes without allocating
	}
	return true
}

// checkAppend flags appends whose destination slice originates inside the
// function (fresh allocation per call) rather than in caller- or
// receiver-owned scratch.
func checkAppend(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if origin := originOf(pass, fn, call.Args[0], 0); origin != "" {
		pass.Reportf(call.Pos(), "append grows a slice that originates in this function (%s); append into parameter, receiver, or pooled scratch", origin)
	}
}

// originOf classifies where the slice expression's backing array comes
// from. It returns "" when the origin is external (parameter, receiver,
// package-level scratch, or unknown), or a short description of the
// function-local origin otherwise.
func originOf(pass *analysis.Pass, fn *ast.FuncDecl, e ast.Expr, depth int) string {
	if depth > 10 {
		return ""
	}
	e = ast.Unparen(e)
	info := pass.TypesInfo

	switch x := e.(type) {
	case *ast.CompositeLit:
		return "slice literal"
	case *ast.CallExpr:
		if b, ok := analysis.CalleeObj(info, x).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				return "make"
			case "append":
				return originOf(pass, fn, x.Args[0], depth+1)
			}
		}
		return "" // other call results: origin is the callee's business
	case *ast.SliceExpr:
		return originOf(pass, fn, x.X, depth+1)
	case *ast.Ident:
		if info.Types[e].IsNil() {
			return "nil"
		}
	}

	root := analysis.RootObj(info, e)
	v, ok := root.(*types.Var)
	if !ok {
		return ""
	}
	if v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return "" // package-level scratch
	}
	if isParamOrReceiver(pass, fn, v) {
		return ""
	}
	// v is function-local (or a named result). Acceptable if any assignment
	// in the function roots it at external storage.
	ok = false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch as := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range as.Lhs {
				if analysis.RootObj(info, lhs) != v || i >= len(as.Rhs) {
					continue
				}
				if originOf(pass, fn, as.Rhs[i], depth+1) == "" {
					// Careful: "" also means unknown; but an unknowable
					// origin (another call's result) is the callee's
					// allocation, not this loop's.
					if !isSelfAppend(info, as.Rhs[i], v) {
						ok = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range as.Names {
				if info.Defs[name] != v {
					continue
				}
				if i < len(as.Values) && originOf(pass, fn, as.Values[i], depth+1) == "" {
					ok = true
				}
			}
		}
		return !ok
	})
	if ok {
		return ""
	}
	return "local " + v.Name()
}

// isSelfAppend reports whether e is append(v, ...) — growing v from itself,
// which says nothing about v's origin.
func isSelfAppend(info *types.Info, e ast.Expr, v *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if b, ok := analysis.CalleeObj(info, call).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return analysis.RootObj(info, call.Args[0]) == v
}

// isParamOrReceiver reports whether v is one of fn's parameters or its
// receiver. Named results are deliberately not included: a named result
// starts out nil, so appending to it allocates unless it was first assigned
// from external storage (which the origin analysis detects).
func isParamOrReceiver(pass *analysis.Pass, fn *ast.FuncDecl, v *types.Var) bool {
	info := pass.TypesInfo
	check := func(fields *ast.FieldList) bool {
		if fields == nil {
			return false
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if info.Defs[name] == v {
					return true
				}
			}
		}
		return false
	}
	return check(fn.Recv) || check(fn.Type.Params)
}
