package hotpathalloc_test

import (
	"testing"

	"boss/internal/analysis/analysistest"
	"boss/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/src", hotpathalloc.Analyzer)
}
