package hot

// Front-door fixtures modeled on the serving tier's admission and dedup
// hot path: the good twin threads waiters through intrusive links and
// recycles them via a free list, so admitting or attaching a request
// draws nothing; the bad twin does the obvious thing — a closure per
// waiter, a freshly-grown waiter list, a formatted flight key — and
// every one of those allocates per request.

import "fmt"

// waiter is one queued request; prev/next make the per-flight waiter
// list intrusive, free links recycled waiters.
type waiter struct {
	key        string
	prev, next *waiter
	free       *waiter
}

// flightTable owns the pending-flight queue and the waiter free list,
// mirroring the front's arena discipline: everything admission touches
// is preallocated or recycled, never freshly heap-allocated.
type flightTable struct {
	head, tail  *waiter
	freeWaiters *waiter
}

// getWaiter pops the free list; refilling an empty free list is the
// cold constructor's job, not the hot path's.
//
//boss:hotpath
func getWaiter(t *flightTable) *waiter {
	w := t.freeWaiters
	if w != nil {
		t.freeWaiters = w.free
		w.free = nil
	}
	return w
}

// admitIntrusive is the good twin: open-coded tail insertion into the
// intrusive queue — no container allocation, no closure, nothing boxed.
//
//boss:hotpath
func admitIntrusive(t *flightTable, w *waiter, key string) {
	w.key = key
	w.prev = t.tail
	if t.tail != nil {
		t.tail.next = w
	} else {
		t.head = w
	}
	t.tail = w
}

// attachIntrusive is the dedup hit path: walk the queue comparing keys;
// a plain string compare draws nothing.
//
//boss:hotpath
func attachIntrusive(t *flightTable, key string) *waiter {
	for w := t.head; w != nil; w = w.next {
		if w.key == key {
			return w
		}
	}
	return nil
}

// releaseWaiter unlinks a waiter and returns it to the free list.
//
//boss:hotpath
func releaseWaiter(t *flightTable, w *waiter) {
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		t.head = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		t.tail = w.prev
	}
	w.prev, w.next = nil, nil
	w.free = t.freeWaiters
	t.freeWaiters = w
}

// badFlights is the naive table the bad twin builds around: a waiter
// slice per flight and a callback per waiter.
type badFlights struct {
	waiters map[string][]func(string)
}

// admitAllocs is the bad twin: rendering the flight key with fmt,
// capturing the request in a closure, and growing a fresh waiter list
// all allocate on every admission.
//
//boss:hotpath
func admitAllocs(t *badFlights, canon string, k int, results []string) {
	key := fmt.Sprintf("%s/%d", canon, k) // want `fmt\.Sprintf in hot path`
	notify := func(res string) {          // want `closure allocation in hot path`
		results = append(results, res)
	}
	fresh := make([]func(string), 0, 1)
	fresh = append(fresh, notify) // want `append grows a slice that originates in this function`
	t.waiters[key] = fresh
}

// attachAllocs is the bad dedup twin: concatenating the key allocates on
// every lookup, hit or miss.
//
//boss:hotpath
func attachAllocs(t *badFlights, canon, suffix string) []func(string) {
	return t.waiters[canon+suffix] // want `string concatenation allocates in hot path`
}
