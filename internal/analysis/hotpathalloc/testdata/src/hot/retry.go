package hot

// Retry-loop fixtures modeled on the pool's resilient shard path: the hot
// loop may branch, count attempts, and compute jittered backoff, but error
// rendering and event recording must be outlined to cold helpers.

import "fmt"

type attemptErr struct {
	shard   int
	attempt int
}

func (e *attemptErr) Error() string { return "attempt failed" }

// recordEvent stands in for the outlined (unannotated, cold) bookkeeping
// helpers the real retry loop calls.
func recordEvent(shard, attempt int) {}

func tryShard(shard, attempt int) error { return nil }

// backoffStep mirrors backoffDelay: pure integer mixing, nothing escapes.
//
//boss:hotpath
func backoffStep(seed uint64, shard, attempt int) uint64 {
	h := seed ^ (uint64(shard)+1)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h
}

// retryLoop is the good twin: attempt/branch/backoff with all allocation
// outlined — draws nothing.
//
//boss:hotpath
func retryLoop(shard, maxRetries int) error {
	var last error
	for attempt := 0; ; attempt++ {
		recordEvent(shard, attempt)
		err := tryShard(shard, attempt)
		if err == nil {
			return nil
		}
		last = err
		if attempt >= maxRetries {
			return last
		}
		_ = backoffStep(7, shard, attempt)
	}
}

// retryLoopAllocs is the bad twin: formatting the error and deferring
// cleanup through a closure both allocate per attempt.
//
//boss:hotpath
func retryLoopAllocs(shard, maxRetries int) error {
	for attempt := 0; ; attempt++ {
		err := tryShard(shard, attempt)
		if err == nil {
			return nil
		}
		if attempt >= maxRetries {
			return fmt.Errorf("shard %d: %v", shard, err) // want `fmt\.Errorf in hot path`
		}
		cleanup := func() { recordEvent(shard, attempt) } // want `closure allocation in hot path`
		cleanup()
	}
}
