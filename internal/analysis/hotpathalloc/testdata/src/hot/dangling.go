package hot

// warmup anchors the file so the marker below floats between
// declarations rather than in the legal file-header position.
func warmup(n int) int {
	return n * 2
}

// Its function moved to another file and left the annotation behind, so
// nothing is checked.

//boss:hotpath orphaned by a refactor
// want-1 `dangling //boss:hotpath marker`

func coldHelper(n int) int {
	x := n + 1 //boss:hotpath trailing markers guard nothing either
	// want-1 `dangling //boss:hotpath marker`
	return x
}
