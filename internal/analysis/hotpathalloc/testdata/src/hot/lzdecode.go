package hot

// LZ-decode fixtures modeled on the docstore's block decode loop and the
// fetch engine's cache-hit path: the good twins copy into caller-owned
// destinations with bounds-checked loops and serve hits as zero-copy
// subslices, so a fetch draws nothing; the bad twins do the obvious
// thing — grow a fresh output slice per block, format a key per hit,
// hand progress to a closure — and every one allocates per fetch.

import "fmt"

// lzToken is one decoded instruction: a literal run or a back-reference.
type lzToken struct {
	lit    []byte
	dist   int
	length int
}

// decodeInto is the good twin of the decode loop: literal runs and
// back-references copy into the caller's dst with open-coded loops; the
// running offset is the only state. Overlapping back-references must
// copy byte-by-byte (the match source includes bytes written by this
// very copy), which is exactly what the open-coded loop does.
//
//boss:hotpath
func decodeInto(dst []byte, toks []lzToken) int {
	n := 0
	for i := range toks {
		t := &toks[i]
		for _, b := range t.lit {
			if n >= len(dst) {
				return -1
			}
			dst[n] = b
			n++
		}
		src := n - t.dist
		if src < 0 {
			return -1
		}
		for j := 0; j < t.length; j++ {
			if n >= len(dst) {
				return -1
			}
			dst[n] = dst[src+j]
			n++
		}
	}
	return n
}

// docView is a decoded block plus per-document offsets; hitField is the
// good twin of the fetch hit path: a hit is two offset reads and a
// subslice of the pinned block — zero copies, zero allocations.
type docView struct {
	raw  []byte
	offs []uint32
}

//boss:hotpath
func hitField(v *docView, doc int) []byte {
	if doc < 0 || doc+1 >= len(v.offs) {
		return nil
	}
	return v.raw[v.offs[doc]:v.offs[doc+1]]
}

// decodeGrow is the bad twin of the decode loop: growing a fresh output
// slice allocates (and re-copies) per block.
//
//boss:hotpath
func decodeGrow(toks []lzToken) []byte {
	var out []byte
	for i := range toks {
		out = append(out, toks[i].lit...) // want `append grows a slice that originates in this function`
	}
	return out
}

// hitKeyFormat is the bad twin of the hit path's cache probe: formatting
// the key allocates on every single fetch, hit or miss.
//
//boss:hotpath
func hitKeyFormat(list string, block uint32) string {
	return fmt.Sprintf("%s/%d", list, block) // want `fmt\.Sprintf in hot path`
}

// hitKeyConcat allocates the same key by concatenation instead.
//
//boss:hotpath
func hitKeyConcat(list, class string) string {
	return list + ":" + class // want `string concatenation allocates in hot path`
}

// decodeNotify hands per-block progress to a fresh closure, which
// captures and therefore allocates per block.
//
//boss:hotpath
func decodeNotify(dst []byte, toks []lzToken, report func(func() int)) int {
	n := decodeInto(dst, toks)
	report(func() int { return n }) // want `closure allocation in hot path`
	return n
}
