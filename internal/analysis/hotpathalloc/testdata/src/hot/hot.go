// Package hot exercises hotpathalloc: each annotated function violates one
// rule; the unannotated twin at the bottom draws nothing.
package hot

import (
	"fmt"
	"sort"
)

type ring struct {
	scratch []uint32
}

func sink(v interface{})        {}
func sinkAll(vs ...interface{}) {}

//boss:hotpath
func sortsSlice(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice allocates in hot path` `closure allocation in hot path`
}

//boss:hotpath
func formats(err error) string {
	return fmt.Sprintf("boom: %v", err) // want `fmt\.Sprintf in hot path`
}

//boss:hotpath
func concats(a, b string) string {
	return a + b // want `string concatenation allocates in hot path`
}

//boss:hotpath
func concatAssign(s string) string {
	s += "!" // want `string concatenation allocates in hot path`
	return s
}

//boss:hotpath
func captures(n int) int {
	f := func() int { return n } // want `closure allocation in hot path`
	return f()
}

//boss:hotpath
func boxesArg(x int, p *ring) {
	sink(x) // want `argument boxes a concrete value into interface`
	sink(p) // pointer-shaped: converts without allocating
}

//boss:hotpath
func boxesAssign(x int) interface{} {
	var v interface{}
	v = x // want `assignment boxes a concrete value into interface`
	return v
}

//boss:hotpath
func boxesReturn(x uint64) interface{} {
	return x // want `return boxes a concrete value into interface`
}

//boss:hotpath
func boxesConv(x float64) {
	_ = interface{}(x) // want `conversion to interface`
}

//boss:hotpath
func panics(code int) {
	if code != 0 {
		panic(code) // builtin arguments are exempt: panicking is cold
	}
}

//boss:hotpath
func forwards(vs []interface{}) {
	sinkAll(vs...) // forwarding a slice: no per-element boxing
}

//boss:hotpath
func appendsFresh(n int) []uint32 {
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, uint32(i)) // want `append grows a slice that originates in this function`
	}
	return out
}

//boss:hotpath
func appendsLiteral() []uint32 {
	xs := []uint32{1}
	return append(xs, 2) // want `append grows a slice that originates in this function`
}

//boss:hotpath
func appendsParam(dst []uint32, v uint32) []uint32 {
	return append(dst, v) // caller-owned scratch amortizes
}

//boss:hotpath
func appendsScratch(r *ring, v uint32) []uint32 {
	buf := r.scratch[:0] // the reslice idiom: roots at the receiver
	buf = append(buf, v)
	return buf
}

// cold is unannotated: the same constructs draw nothing.
func cold(a, b string) string {
	xs := make([]int, 0)
	xs = append(xs, 1)
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return fmt.Sprint(a + b)
}
