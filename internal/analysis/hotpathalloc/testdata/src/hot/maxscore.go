package hot

// MaxScore fixtures modeled on the sparse-dot essential-list loop: each
// candidate document gathers the matching essential streams, then probes
// the non-essential ones in descending bound order. The good twin keeps
// its match scratch rooted at the run record (the reslice idiom) and
// open-codes the abandon check; the bad twin does the obvious thing —
// collect matches into a fresh slice per candidate and wrap the abandon
// predicate in a closure — and allocates on every scored document.

// msStream is one posting stream in the sparse operator.
type msStream struct {
	doc   uint32
	imp   uint8
	bound float64
}

// msRun owns the per-query scratch the essential loop reuses.
type msRun struct {
	matched []*msStream
	prefix  []float64
}

// essentialGather is the good twin: matches collect into the run-owned
// scratch via the reslice idiom, and the per-stream abandon test is an
// open-coded comparison, so the loop draws nothing per candidate.
//
//boss:hotpath
func (r *msRun) essentialGather(streams []*msStream, d uint32, cut float64) []*msStream {
	matched := r.matched[:0]
	sum := 0.0
	for _, s := range streams {
		if s.doc == d {
			matched = append(matched, s)
			sum += float64(s.imp)
		}
	}
	for j := len(r.prefix) - 1; j >= 0; j-- {
		if sum+r.prefix[j] < cut {
			break
		}
		sum += r.prefix[j]
	}
	r.matched = matched
	return matched
}

// essentialGatherFresh is the bad twin: the match list originates in the
// function and the abandon predicate captures the running sum, so every
// candidate pays a slice growth and a closure allocation.
//
//boss:hotpath
func (r *msRun) essentialGatherFresh(streams []*msStream, d uint32, cut float64) []*msStream {
	var matched []*msStream
	sum := 0.0
	for _, s := range streams {
		if s.doc == d {
			matched = append(matched, s) // want `append grows a slice that originates in this function`
			sum += float64(s.imp)
		}
	}
	abandoned := func(rem float64) bool { return sum+rem < cut } // want `closure allocation in hot path`
	for j := len(r.prefix) - 1; j >= 0; j-- {
		if abandoned(r.prefix[j]) {
			break
		}
		sum += r.prefix[j]
	}
	return matched
}
