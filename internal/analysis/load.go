package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") in the module rooted at dir, parses
// and type-checks every matched package, and returns the Program over them:
// the packages in stable order plus the shared summary/call-graph layer
// every analyzer consumes.
//
// The loader leans on the go tool rather than on x/tools/go/packages: one
// `go list -deps -export -json` invocation yields both the pattern matches
// and compiled export data for every dependency (the go tool builds export
// data into its cache even offline), and go/importer's gc mode reads those
// files back for type checking. Test files are not loaded: the invariants
// the suite enforces are production-code invariants.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	importMap := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("analysis: package %s uses cgo, which the loader does not support", t.ImportPath)
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, gf := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %v", gf, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			GoFiles:    t.GoFiles,
			Fset:       fset,
			Files:      files,
			Pkg:        tpkg,
			TypesInfo:  info,
		})
	}
	return buildProgram(dir, patterns, pkgs), nil
}

// Fset returns the program's shared file set (one per Load).
func (p *Program) Fset() *token.FileSet {
	if len(p.Pkgs) == 0 {
		return token.NewFileSet()
	}
	return p.Pkgs[0].Fset
}

// Run applies every analyzer to every package and returns the diagnostics
// in the suite's canonical global order: (file, line, column, analyzer
// name, message). The order is independent of analyzer registration and
// package iteration, so successive runs diff cleanly in CI.
func (p *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				P:         pkg,
				Prog:      p,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	fset := p.Fset()
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
