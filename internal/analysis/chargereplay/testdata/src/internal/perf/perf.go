// Package perf mirrors the real charge surface: Metrics methods with a
// mem.Category parameter are charges; AddCompute is category-free.
package perf

import "fixtures/internal/mem"

type Metrics struct {
	Reads   int64
	Compute int64
}

func (m *Metrics) AddSeqRead(n int64, c mem.Category) { m.Reads += n }

func (m *Metrics) AddRandRead(n int64, c mem.Category) { m.Reads += n }

func (m *Metrics) AddCompute(cycles int64) { m.Compute += cycles }
