// Package cache mirrors the decoded-block cache surface chargereplay
// recognizes: Get/Publish/PublishBytes on Cache, Cycles on Entry.
package cache

type Key struct {
	List  uint64
	Block uint32
}

type Entry struct {
	data []byte
	cyc  int64
}

func (e *Entry) Data() []byte { return e.data }

func (e *Entry) Cycles() int64 { return e.cyc }

type Cache struct {
	m map[Key]*Entry
}

func (c *Cache) Get(k Key) *Entry { return c.m[k] }

func (c *Cache) Reserve(n int) *Entry { return &Entry{data: make([]byte, 0, n)} }

func (c *Cache) Publish(k Key, e *Entry, cyc int64) *Entry {
	e.cyc = cyc
	c.m[k] = e
	return e
}

func (c *Cache) PublishBytes(k Key, e *Entry, b []byte, cyc int64) *Entry {
	e.data, e.cyc = b, cyc
	c.m[k] = e
	return e
}
