package core

import (
	"fixtures/internal/mem"
	"fixtures/internal/perf"
)

// chargeColdStream is the cross-file cold-path helper: its transitive
// charge set (CatPostings) is what the hit arms must replay.
func chargeColdStream(m *perf.Metrics) {
	m.AddSeqRead(64, mem.CatPostings)
}
