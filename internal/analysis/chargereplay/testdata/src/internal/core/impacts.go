package core

import (
	"fixtures/internal/cache"
	"fixtures/internal/mem"
	"fixtures/internal/perf"
)

// Sparse-dot fixtures: the impact-read scorer serves quantized impacts
// from the raw payload tail, which the block's sequential stream charge
// already covers. The hit arm therefore replays exactly the cold stream
// charge plus the recorded decode cycles — reading the impact bytes adds
// no category of its own on either arm.

// sparseFetchBalanced is the impact-read scorer's cache-hit arm done
// right: hit and cold both charge the postings stream (whose length
// includes the impact tail) and the hit replays the decode cycles the
// publish recorded. Balanced; no findings.
func (e *Engine) sparseFetchBalanced(m *perf.Metrics, k cache.Key) []byte {
	m.AddSeqRead(8, mem.CatMeta)
	ent := e.c.Get(k)
	if ent != nil {
		m.AddSeqRead(72, mem.CatPostings) // docs+tfs stream plus impact tail
		m.AddCompute(ent.Cycles())
		return ent.Data()
	}
	m.AddSeqRead(72, mem.CatPostings)
	ne := e.c.Reserve(72)
	ne = e.c.Publish(k, ne, 21)
	m.AddCompute(21)
	return ne.Data()
}

// sparseFetchStaleCycles reads the impact tail on both arms but serves
// the hit without replaying the recorded decode cycles, so the simulated
// compute time would shrink with the hit rate.
func (e *Engine) sparseFetchStaleCycles(m *perf.Metrics, k cache.Key) []byte { // want `sparseFetchStaleCycles violates charge replay: no cache-hit arm replays recorded decode cycles`
	ent := e.c.Get(k)
	if ent != nil {
		m.AddSeqRead(72, mem.CatPostings)
		return ent.Data()
	}
	m.AddSeqRead(72, mem.CatPostings)
	ne := e.c.Reserve(72)
	ne = e.c.Publish(k, ne, 21)
	return ne.Data()
}

// sparseFetchImpactSkew charges the hit arm as if the impact tail were a
// separate metadata read instead of replaying the cold stream category.
func (e *Engine) sparseFetchImpactSkew(m *perf.Metrics, k cache.Key) []byte { // want `sparseFetchImpactSkew violates charge replay: cache-hit path charges \{CatMeta\} but cold path charges \{CatPostings\}`
	ent := e.c.Get(k)
	if ent != nil {
		m.AddSeqRead(8, mem.CatMeta)
		m.AddCompute(ent.Cycles())
		return ent.Data()
	}
	m.AddSeqRead(72, mem.CatPostings)
	ne := e.c.Reserve(72)
	ne = e.c.Publish(k, ne, 21)
	return ne.Data()
}
