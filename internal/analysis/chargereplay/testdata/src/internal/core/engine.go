// Package core exercises chargereplay: each fetch variant probes and
// publishes the decoded-block cache; only the balanced ones stay quiet.
package core

import (
	"fixtures/internal/cache"
	"fixtures/internal/mem"
	"fixtures/internal/perf"
)

type Engine struct {
	c *cache.Cache
}

// fetchBalanced replays on hits exactly what the cold path charges: the
// shared metadata read plus the postings stream (charged through the
// cross-file helper on the cold side) plus the recorded decode cycles.
func (e *Engine) fetchBalanced(m *perf.Metrics, k cache.Key) []byte {
	m.AddSeqRead(8, mem.CatMeta)
	ent := e.c.Get(k)
	if ent != nil {
		m.AddSeqRead(64, mem.CatPostings)
		m.AddCompute(ent.Cycles())
		return ent.Data()
	}
	chargeColdStream(m)
	ne := e.c.Reserve(64)
	ne = e.c.PublishBytes(k, ne, make([]byte, 64), 17)
	m.AddCompute(17)
	return ne.Data()
}

// fetchEarlyReturn uses the early-return hit shape: the remainder of the
// function is the cold path. Balanced; no findings.
func (e *Engine) fetchEarlyReturn(m *perf.Metrics, k cache.Key) []byte {
	ent := e.c.Get(k)
	if ent != nil {
		m.AddSeqRead(64, mem.CatPostings)
		m.AddCompute(ent.Cycles())
		return ent.Data()
	}
	m.AddSeqRead(64, mem.CatPostings)
	ne := e.c.Reserve(64)
	ne = e.c.Publish(k, ne, 9)
	return ne.Data()
}

// fetchSkewed forgets the postings charge on the hit arm, so the modeled
// figures would drift with the hit rate.
func (e *Engine) fetchSkewed(m *perf.Metrics, k cache.Key) []byte { // want `fetchSkewed violates charge replay: cache-hit path charges \{\(none\)\} but cold path charges \{CatPostings\}`
	ent := e.c.Get(k)
	if ent != nil {
		m.AddCompute(ent.Cycles())
		return ent.Data()
	}
	m.AddSeqRead(64, mem.CatPostings)
	ne := e.c.Reserve(64)
	ne = e.c.Publish(k, ne, 9)
	return ne.Data()
}

// fetchNoReplay charges the same categories on both arms but never
// replays the decode cycles recorded at publish time.
func (e *Engine) fetchNoReplay(m *perf.Metrics, k cache.Key) []byte { // want `fetchNoReplay violates charge replay: no cache-hit arm replays recorded decode cycles`
	ent := e.c.Get(k)
	if ent != nil {
		m.AddSeqRead(64, mem.CatPostings)
		return ent.Data()
	}
	m.AddSeqRead(64, mem.CatPostings)
	ne := e.c.Reserve(64)
	ne = e.c.Publish(k, ne, 9)
	return ne.Data()
}

// fetchColdHelperSkew charges the cold side only through the cross-file
// helper; the hit arm charges a different category, so the transitive
// comparison still catches the mismatch.
func (e *Engine) fetchColdHelperSkew(m *perf.Metrics, k cache.Key) []byte { // want `fetchColdHelperSkew violates charge replay: cache-hit path charges \{CatDecode\} but cold path charges \{CatPostings\}`
	ent := e.c.Get(k)
	if ent != nil {
		m.AddSeqRead(64, mem.CatDecode)
		m.AddCompute(ent.Cycles())
		return ent.Data()
	}
	chargeColdStream(m)
	ne := e.c.Reserve(64)
	ne = e.c.Publish(k, ne, 9)
	return ne.Data()
}

// probeOnly has a Get but no Publish: out of the analyzer's shape, no
// findings regardless of what it charges.
func (e *Engine) probeOnly(m *perf.Metrics, k cache.Key) []byte {
	if ent := e.c.Get(k); ent != nil {
		m.AddSeqRead(64, mem.CatPostings)
		return ent.Data()
	}
	return nil
}
