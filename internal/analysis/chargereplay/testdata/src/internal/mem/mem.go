// Package mem mirrors the real internal/mem surface the analyzer keys on:
// a named Category type and named category constants.
package mem

type Category int

const (
	CatMeta Category = iota
	CatPostings
	CatDecode
)
