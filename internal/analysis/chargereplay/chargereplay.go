// Package chargereplay statically enforces the cache's charge-replay
// invariant (DESIGN.md: the decoded-block cache must not change modeled
// figures): in any function that both probes the decoded-block cache
// (cache.Get) and publishes to it (cache.Publish / PublishBytes), the
// cache-hit arm must charge exactly the same set of mem.Category values
// as the cold (miss) arm, and must replay the decode cycles recorded at
// publish time (a call to the entry's Cycles method).
//
// Until this analyzer, the invariant was enforced only dynamically — by
// tests asserting fig13/fig14/fig15/table2 byte-identity over the paths a
// test corpus happens to exercise. A charge added to the cold path but
// not the hit arm (or vice versa) off those paths would silently skew
// modeled figures as the hit rate moves. This check closes that loophole
// at analysis time.
//
// Mechanically, the analyzer classifies every statement of a qualifying
// function as shared, hit-only, or miss-only by tracking branches whose
// condition tests an entry variable (a value assigned from cache.Get)
// against nil; an `if ent != nil { ... return }` arm flips the remainder
// of its enclosing block to miss-only, matching the early-return shape
// the serving code uses. Charges are counted through the call graph: a
// call to a helper counts the helper's transitive mem.Category set, so
// publish and replay may live in different functions (or files) and the
// comparison still sees through them.
package chargereplay

import (
	"go/ast"
	"go/token"
	"go/types"

	"boss/internal/analysis"
)

// Analyzer is the chargereplay check.
var Analyzer = &analysis.Analyzer{
	Name: "chargereplay",
	Doc:  "require cache-hit arms to charge the same mem.Category set as their cold path and to replay recorded decode cycles",
	Run:  run,
}

// region tags for statements of a publish/replay function.
const (
	regShared = iota
	regHit
	regMiss
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// cacheMethod reports the name of the decoded-block-cache method a call
// invokes (a method on a Cache or Entry type declared in an
// internal/cache package), or "".
func cacheMethod(info *types.Info, call *ast.CallExpr, recvName string) string {
	obj, ok := analysis.CalleeObj(info, call).(*types.Func)
	if !ok || obj.Pkg() == nil || !analysis.PkgPathHas(obj.Pkg().Path(), "internal/cache") {
		return ""
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if n, ok := rt.(*types.Named); !ok || n.Obj().Name() != recvName {
		return ""
	}
	return obj.Name()
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	// Qualify: the function must both probe and publish.
	var getCalls []*ast.CallExpr
	publishes := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch cacheMethod(info, call, "Cache") {
		case "Get":
			getCalls = append(getCalls, call)
		case "Publish", "PublishBytes":
			publishes = true
		}
		return true
	})
	if len(getCalls) == 0 || !publishes {
		return
	}

	// Entry variables: objects assigned (or defined) from a Get result.
	entryVars := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isGet(call, getCalls) && i < len(x.Lhs) {
					if id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok {
						if o := objOf(info, id); o != nil {
							entryVars[o] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range x.Values {
				if call, ok := ast.Unparen(v).(*ast.CallExpr); ok && isGet(call, getCalls) && i < len(x.Names) {
					if o := info.Defs[x.Names[i]]; o != nil {
						entryVars[o] = true
					}
				}
			}
		}
		return true
	})
	if len(entryVars) == 0 {
		return // Get result used inline; nothing to branch on
	}

	// Direct charges are recorded in the enclosing function's summary,
	// keyed by call site; transitive charges come from the callee's
	// summary. The collector needs both.
	direct := make(map[*ast.CallExpr]string)
	if fi := pass.Prog.InfoForDecl(pass.P, fn); fi != nil {
		for _, ch := range fi.Charges {
			direct[ch.Call] = ch.Category
		}
	}

	c := &collector{
		pass:      pass,
		info:      info,
		entryVars: entryVars,
		direct:    direct,
		sets:      [3]map[string]bool{{}, {}, {}},
	}
	c.walkBlock(fn.Body.List, regShared)

	hit := union(c.sets[regShared], c.sets[regHit])
	miss := union(c.sets[regShared], c.sets[regMiss])
	if !equalSets(hit, miss) {
		pass.Reportf(fn.Pos(),
			"%s violates charge replay: cache-hit path charges {%s} but cold path charges {%s}; hits must replay exactly the charges recorded at publish",
			fn.Name.Name, analysis.SortedSet(hit), analysis.SortedSet(miss))
	}
	// The cycles-replay rule applies only to charge-modeling functions: a
	// host-side publish/probe site (the software engine's cursor) charges
	// nothing in either arm and records no decode cycles to replay.
	if len(hit)+len(miss) > 0 && !c.hitReplaysCycles {
		pass.Reportf(fn.Pos(),
			"%s violates charge replay: no cache-hit arm replays recorded decode cycles (call Cycles() on the entry and charge the result)",
			fn.Name.Name)
	}
}

func isGet(call *ast.CallExpr, gets []*ast.CallExpr) bool {
	for _, g := range gets {
		if g == call {
			return true
		}
	}
	return false
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// collector accumulates per-region category sets.
type collector struct {
	pass             *analysis.Pass
	info             *types.Info
	entryVars        map[types.Object]bool
	direct           map[*ast.CallExpr]string
	sets             [3]map[string]bool
	hitReplaysCycles bool
}

// walkBlock classifies a statement list under an inherited region tag.
// An if whose condition is a pure nil test of an entry variable tags its
// arms hit/miss; when such an arm terminates (ends in return), the rest
// of the block flips to the opposite region — the early-return shape.
func (c *collector) walkBlock(stmts []ast.Stmt, region int) {
	for i, s := range stmts {
		ifs, ok := s.(*ast.IfStmt)
		if !ok {
			c.walkStmt(s, region)
			continue
		}
		pol, pure := c.polarity(ifs.Cond)
		if pol == regShared {
			c.walkStmt(ifs, region)
			continue
		}
		if ifs.Init != nil {
			c.walkStmt(ifs.Init, region)
		}
		thenRegion, elseRegion := pol, opposite(pol)
		c.walkBlock(ifs.Body.List, combine(region, thenRegion))
		if ifs.Else != nil {
			c.walkStmt(ifs.Else, combine(region, elseRegion))
		} else if pure && terminates(ifs.Body) {
			// if ent != nil { ...; return } — the remainder of this block
			// runs only when the test failed.
			c.walkBlock(stmts[i+1:], combine(region, elseRegion))
			return
		}
	}
}

// combine nests region tags: once inside a hit or miss arm, deeper
// entry-variable branches keep the outer tag (the outer condition already
// fixed which world we are in).
func combine(outer, inner int) int {
	if outer != regShared {
		return outer
	}
	return inner
}

func opposite(r int) int {
	if r == regHit {
		return regMiss
	}
	return regHit
}

// polarity classifies a branch condition against the entry variables:
// `ent != nil` (optionally strengthened with &&) is a hit test, `ent ==
// nil` a miss test; anything else is shared. pure reports the condition
// is exactly the nil test, so its negation is exact too.
func (c *collector) polarity(cond ast.Expr) (region int, pure bool) {
	switch x := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.NEQ, token.EQL:
			id, nilSide := ast.Unparen(x.X), ast.Unparen(x.Y)
			if c.isNil(id) {
				id, nilSide = nilSide, id
			}
			if !c.isNil(nilSide) {
				return regShared, false
			}
			ident, ok := id.(*ast.Ident)
			if !ok || !c.entryVars[objOf(c.info, ident)] {
				return regShared, false
			}
			if x.Op == token.NEQ {
				return regHit, true
			}
			return regMiss, true
		case token.LAND:
			// ent != nil && extra — still a hit-only arm, but its negation
			// is not a pure miss test.
			if r, _ := c.polarity(x.X); r != regShared {
				return r, false
			}
			if r, _ := c.polarity(x.Y); r != regShared {
				return r, false
			}
		}
	}
	return regShared, false
}

func (c *collector) isNil(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	return ok && tv.IsNil()
}

// terminates reports whether a block's last statement is a return.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// walkStmt records charges and cycle replays under one region tag,
// recursing through non-entry-branch control flow.
func (c *collector) walkStmt(n ast.Node, region int) {
	switch x := n.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		c.walkBlock(x.List, region)
		return
	case *ast.IfStmt:
		if x.Init != nil {
			c.walkStmt(x.Init, region)
		}
		c.walkExpr(x.Cond, region)
		c.walkBlock(x.Body.List, region)
		c.walkStmt(x.Else, region)
		return
	case *ast.ForStmt:
		c.walkStmt(x.Init, region)
		c.walkExpr(x.Cond, region)
		c.walkStmt(x.Post, region)
		c.walkBlock(x.Body.List, region)
		return
	case *ast.RangeStmt:
		c.walkExpr(x.X, region)
		c.walkBlock(x.Body.List, region)
		return
	case *ast.SwitchStmt:
		c.walkStmt(x.Init, region)
		c.walkExpr(x.Tag, region)
		c.walkBlock(x.Body.List, region)
		return
	case *ast.CaseClause:
		for _, e := range x.List {
			c.walkExpr(e, region)
		}
		c.walkBlock(x.Body, region)
		return
	case ast.Stmt:
		ast.Inspect(x, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				c.recordCall(call, region)
			}
			return true
		})
		return
	}
}

func (c *collector) walkExpr(e ast.Expr, region int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			c.recordCall(call, region)
		}
		return true
	})
}

// recordCall accumulates the call's direct or transitive charge set into
// the region, and notes hit-region Cycles() replays.
func (c *collector) recordCall(call *ast.CallExpr, region int) {
	if cat, ok := c.direct[call]; ok {
		c.sets[region][cat] = true
		return
	}
	obj, ok := analysis.CalleeObj(c.info, call).(*types.Func)
	if !ok {
		return
	}
	if region == regHit && cacheMethod(c.info, call, "Entry") == "Cycles" {
		c.hitReplaysCycles = true
	}
	key := analysis.FuncKey(obj)
	for cat := range c.pass.Prog.TransitiveCharges(key) {
		c.sets[region][cat] = true
	}
}

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func equalSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
