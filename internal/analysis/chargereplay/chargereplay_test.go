package chargereplay_test

import (
	"testing"

	"boss/internal/analysis/analysistest"
	"boss/internal/analysis/chargereplay"
)

func TestChargeReplay(t *testing.T) {
	analysistest.Run(t, "testdata/src", chargereplay.Analyzer)
}
