// Package cache implements a sharded, concurrency-safe cache of decoded
// posting blocks for the wall-clock serving path. The corpus's Zipf-
// distributed term popularity means nearly every query touches the same hot
// posting lists; without cross-query reuse each query re-fetches and
// re-decompresses the same blocks even though a single decode is cheap.
// The cache closes that gap: entries are keyed by (posting-list identity,
// block index), decoded values live in cache-owned slabs, and the hit path
// is allocation-free — a shard-mutex map probe returning pinned doc/tf
// slices.
//
// Eviction is CLOCK (second chance): each shard keeps its resident entries
// on a ring with a reference bit set on every hit; the hand clears bits on
// the first pass and evicts the first unreferenced, unpinned entry. Pinned
// entries (refcount > 0) are never evicted, so a reader can hold a block's
// slices across its whole scan without copying. When the byte budget cannot
// be met because everything is pinned, Publish hands the entry back to the
// caller un-inserted ("bypass"): the budget is a hard ceiling, never
// exceeded.
//
// Invalidation is epoch-based: BumpEpoch (called on index reload) makes all
// resident entries stale in O(1); stale entries read as misses and are
// reclaimed lazily by the eviction scan. Readers that pinned an entry
// before the bump keep a consistent view until they release it.
//
// The cache stores whatever the publisher decoded, along with the decode
// cycle count the publisher measured, so the accelerator model can charge
// hits exactly as it charges misses (the simulated timings stay
// bit-identical with or without the cache). Consequently a cache must not
// be shared between engines whose decoders would report different cycle
// counts for the same block (e.g. accelerators programmed with different
// decompression configuration files); one cache per cluster — whose shards
// all share one configuration — is the intended deployment.
package cache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Key identifies one decoded block: the owning container's process-wide
// identity (index.PostingList.ID or docstore.Store.ID), the block index
// within it, and the client class. Class keeps the two ID namespaces from
// colliding now that the cache serves both posting blocks and document
// blocks; its zero value is ClassPosting, so posting-path call sites are
// unchanged and hash to the same shards as before.
type Key struct {
	List  uint64
	Block uint32
	Class uint8
}

// Cache client classes. Stats are split by class so a hit-rate regression
// in one client cannot hide behind the other.
const (
	ClassPosting uint8 = iota // decoded posting blocks (docIDs + tfs)
	ClassDoc                  // decoded document-store blocks (packed bytes)
	numClasses
)

// entryOverheadBytes approximates the budget charge of one resident entry
// beyond its slab: the Entry struct, its map slot, and its ring slot.
const entryOverheadBytes = 128

// slabQuantum rounds slab capacities so recycled slabs fit most blocks
// (2 values per posting × the default 128-posting block).
const slabQuantum = 256

// Entry is one decoded block. Between Get/Publish and Release the entry is
// pinned and Docs/Tfs (posting class) or Data (doc class) return stable,
// immutable slices into the cache-owned slab; after Release the slices
// must not be used.
type Entry struct {
	key    Key
	epoch  uint64
	docs   []uint32
	tfs    []uint32
	data   []byte   // published byte payload (doc-class entries)
	buf    []uint32 // the arena slab backing docs and tfs
	bbuf   []byte   // the arena slab backing data
	cycles int64
	bytes  int64 // budget charge: slab capacities + entryOverheadBytes

	// resident is true for entries inserted into a shard (recycled only by
	// the evictor) and false for bypass entries (recycled by Release when
	// the last pin drops). Written before the entry is shared.
	resident bool

	used atomic.Bool  // CLOCK reference bit
	refs atomic.Int32 // pin count; the evictor skips entries with refs > 0
}

// Docs returns the decoded docIDs. Valid only while the entry is pinned.
func (e *Entry) Docs() []uint32 { return e.docs }

// Tfs returns the decoded term frequencies. Valid only while pinned.
func (e *Entry) Tfs() []uint32 { return e.tfs }

// Data returns the decoded byte payload of a doc-class entry. Valid only
// while the entry is pinned.
func (e *Entry) Data() []byte { return e.data }

// Cycles returns the decode cycle count recorded at publish time, so cache
// hits can charge the simulated pipeline exactly as a fresh decode would.
func (e *Entry) Cycles() int64 { return e.cycles }

// DocsBuf returns a zero-length decode destination for n docIDs inside the
// slab of an entry obtained from Reserve.
func (e *Entry) DocsBuf(n int) []uint32 { return e.buf[:0:n] }

// TfsBuf returns a zero-length decode destination for n term frequencies
// inside the slab, disjoint from DocsBuf's region.
func (e *Entry) TfsBuf(n int) []uint32 { return e.buf[n : n : 2*n] }

// ByteBuf returns an n-byte decode destination inside the byte slab of an
// entry obtained from ReserveBytes.
func (e *Entry) ByteBuf(n int) []byte { return e.bbuf[:n] }

// shard is one lock domain of the cache.
type shard struct {
	mu     sync.Mutex
	m      map[Key]*Entry
	ring   []*Entry // CLOCK ring of resident entries
	hand   int
	bytes  int64 // resident budget charge; never exceeds budget
	budget int64

	// Counters live under the shard mutex so the hit path adds no extra
	// cross-core atomic traffic. Lookup and served-traffic counters are
	// split by Key.Class; evictions and bypasses are capacity effects of
	// the shared budget and stay unsplit.
	hits           [numClasses]int64
	misses         [numClasses]int64
	evictions      int64
	bypasses       int64
	servedBytes    [numClasses]int64
	servedPostings int64

	_ [64]byte // keep neighbouring shards off this shard's cache lines
}

// Cache is a sharded decoded-block cache with a hard byte budget.
type Cache struct {
	shards []shard
	mask   uint64
	epoch  atomic.Uint64
	pool   sync.Pool // recycled *Entry slabs
}

// New returns a cache with the given byte budget, sharded to GOMAXPROCS
// (rounded up to a power of two) so concurrent queries rarely contend on
// one mutex. A nil *Cache is valid everywhere and behaves as "no cache".
func New(budgetBytes int64) *Cache {
	return NewSharded(budgetBytes, runtime.GOMAXPROCS(0))
}

// NewSharded returns a cache with an explicit shard count (tests and fuzz
// targets use one shard for deterministic eviction order).
func NewSharded(budgetBytes int64, shards int) *Cache {
	if budgetBytes <= 0 {
		return nil
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1)}
	c.epoch.Store(1)
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*Entry)
		c.shards[i].budget = budgetBytes / int64(n)
	}
	return c
}

// shardFor mixes the key into a shard index.
func (c *Cache) shardFor(k Key) *shard {
	// The class term is zero for ClassPosting, so posting keys map to the
	// same shards (and evict in the same order) as before doc blocks
	// became a second client.
	h := k.List*0x9E3779B97F4A7C15 ^ (uint64(k.Block)+1)*0xBF58476D1CE4E5B9 ^ uint64(k.Class)*0x94D049BB133111EB
	h ^= h >> 29
	return &c.shards[h&c.mask]
}

// Get returns the pinned entry for k, or nil on a miss (including entries
// staled by BumpEpoch). The caller must Release the entry when done with
// its slices.
//
//boss:hotpath the cross-query cache hit path; one probe per block fetch.
func (c *Cache) Get(k Key) *Entry {
	if c == nil {
		return nil
	}
	epoch := c.epoch.Load()
	s := c.shardFor(k)
	cls := k.Class % numClasses
	s.mu.Lock()
	e := s.m[k]
	if e == nil || e.epoch != epoch {
		s.misses[cls]++
		s.mu.Unlock()
		return nil
	}
	e.refs.Add(1)
	e.used.Store(true)
	s.hits[cls]++
	s.servedBytes[cls] += int64(len(e.docs)+len(e.tfs))*4 + int64(len(e.data))
	s.servedPostings += int64(len(e.docs))
	s.mu.Unlock()
	return e
}

// Reserve returns a private, pinned entry whose slab holds n docIDs plus n
// term frequencies. Decode into DocsBuf(n)/TfsBuf(n), then Publish.
//
//boss:pool-escapes the slab leaves with the caller until Publish/Release (arena-slab publish pattern).
func (c *Cache) Reserve(n int) *Entry {
	e, _ := c.pool.Get().(*Entry)
	if e == nil {
		e = new(Entry)
	}
	if need := 2 * n; cap(e.buf) < need {
		q := (need + slabQuantum - 1) / slabQuantum * slabQuantum
		e.buf = make([]uint32, 0, q)
	}
	e.docs, e.tfs, e.data = nil, nil, nil
	e.cycles, e.bytes = 0, 0
	e.resident = false
	e.used.Store(false)
	e.refs.Store(1)
	return e
}

// ReserveBytes returns a private, pinned entry whose byte slab holds n
// bytes. Decode into ByteBuf(n), then PublishBytes.
//
//boss:pool-escapes the slab leaves with the caller until Publish/Release (arena-slab publish pattern).
func (c *Cache) ReserveBytes(n int) *Entry {
	e, _ := c.pool.Get().(*Entry)
	if e == nil {
		e = new(Entry)
	}
	if cap(e.bbuf) < n {
		q := (n + slabQuantum - 1) / slabQuantum * slabQuantum
		e.bbuf = make([]byte, 0, q)
	}
	e.docs, e.tfs, e.data = nil, nil, nil
	e.cycles, e.bytes = 0, 0
	e.resident = false
	e.used.Store(false)
	e.refs.Store(1)
	return e
}

// Publish inserts a reserved, decoded entry under k and returns the entry
// the caller should use — either e itself (now resident, still pinned) or,
// if a concurrent publisher won the race, the already-resident entry
// (pinned; e's slab is recycled). When the shard cannot make room — the
// entry exceeds the shard budget, or everything resident is pinned — the
// entry is returned un-inserted and stays caller-owned until Release. docs
// and tfs must be slices of e's slab; cycles is the decode cycle count to
// replay on hits.
func (c *Cache) Publish(k Key, e *Entry, docs, tfs []uint32, cycles int64) *Entry {
	e.key = k
	e.docs, e.tfs = docs, tfs
	e.cycles = cycles
	e.bytes = int64(cap(e.buf))*4 + int64(cap(e.bbuf)) + entryOverheadBytes
	return c.insert(k, e)
}

// PublishBytes is Publish for a doc-class entry reserved with
// ReserveBytes: data must be a slice of e's byte slab; cycles is the
// decode cycle count to replay on hits.
func (c *Cache) PublishBytes(k Key, e *Entry, data []byte, cycles int64) *Entry {
	e.key = k
	e.data = data
	e.cycles = cycles
	e.bytes = int64(cap(e.buf))*4 + int64(cap(e.bbuf)) + entryOverheadBytes
	return c.insert(k, e)
}

// insert places a filled entry into its shard under the race/budget rules
// described on Publish.
func (c *Cache) insert(k Key, e *Entry) *Entry {
	s := c.shardFor(k)
	s.mu.Lock()
	epoch := c.epoch.Load()
	e.epoch = epoch
	if old := s.m[k]; old != nil && old.epoch == epoch {
		old.refs.Add(1)
		old.used.Store(true)
		s.mu.Unlock()
		e.refs.Store(0)
		c.free(e)
		return old
	}
	if e.bytes > s.budget || !s.makeRoom(c, e.bytes, epoch) {
		s.bypasses++
		s.mu.Unlock()
		return e
	}
	e.resident = true
	e.used.Store(true)
	s.m[k] = e
	s.ring = append(s.ring, e)
	s.bytes += e.bytes
	s.mu.Unlock()
	return e
}

// Release drops one pin. Entries from Get/Publish become evictable again;
// a bypass entry's slab returns to the slab pool when its last pin drops.
//
//boss:hotpath one call per block a query finishes with.
func (c *Cache) Release(e *Entry) {
	if c == nil || e == nil {
		return
	}
	// Read resident before dropping the pin: while pinned the entry cannot
	// be freed, so the flag is stable; the instant the pin drops, a resident
	// entry belongs to the evictor and must not be touched again here.
	resident := e.resident
	if e.refs.Add(-1) == 0 && !resident {
		c.free(e)
	}
}

// free recycles an unreachable entry's slab. The entry must be unpinned and
// either never resident or already removed from its shard.
func (e *Entry) reset() {
	e.key = Key{}
	e.docs, e.tfs, e.data = nil, nil, nil
	e.cycles, e.bytes, e.epoch = 0, 0, 0
	e.resident = false
}

func (c *Cache) free(e *Entry) {
	e.reset()
	c.pool.Put(e)
}

// makeRoom evicts entries until need bytes fit under the shard budget.
// Returns false when the budget cannot be met (all entries pinned). Caller
// holds s.mu.
func (s *shard) makeRoom(c *Cache, need int64, epoch uint64) bool {
	for s.bytes+need > s.budget {
		if !s.evictOne(c, epoch) {
			return false
		}
	}
	return true
}

// evictOne runs the CLOCK hand: stale entries and second-chance losers with
// no pins are evicted; referenced entries get their bit cleared; pinned
// entries are skipped. Returns false when two full sweeps find nothing
// evictable. Caller holds s.mu.
func (s *shard) evictOne(c *Cache, epoch uint64) bool {
	for scanned := 0; scanned < 2*len(s.ring); scanned++ {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		e := s.ring[s.hand]
		if e.refs.Load() > 0 {
			s.hand++
			continue
		}
		if e.epoch == epoch && e.used.CompareAndSwap(true, false) {
			s.hand++
			continue
		}
		// Unpinned and either stale or out of chances: evict. No new pin
		// can appear — Get requires s.mu, which we hold.
		if s.m[e.key] == e {
			delete(s.m, e.key)
		}
		last := len(s.ring) - 1
		s.ring[s.hand] = s.ring[last]
		s.ring[last] = nil
		s.ring = s.ring[:last]
		s.bytes -= e.bytes
		s.evictions++
		c.free(e)
		return true
	}
	return false
}

// BumpEpoch invalidates every resident entry in O(resident): unpinned
// entries are reclaimed immediately, pinned ones stay readable for their
// current holders and are reclaimed by later eviction scans. Call on index
// reload.
func (c *Cache) BumpEpoch() {
	if c == nil {
		return
	}
	epoch := c.epoch.Add(1)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		kept := s.ring[:0]
		for _, e := range s.ring {
			if e.refs.Load() > 0 {
				kept = append(kept, e) // stale but pinned: reclaim later
				continue
			}
			if s.m[e.key] == e {
				delete(s.m, e.key)
			}
			s.bytes -= e.bytes
			s.evictions++
			c.free(e)
		}
		for j := len(kept); j < len(s.ring); j++ {
			s.ring[j] = nil
		}
		s.ring = kept
		s.hand = 0
		_ = epoch
		s.mu.Unlock()
	}
}

// Epoch returns the current epoch (starts at 1).
func (c *Cache) Epoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// Stats is a point-in-time snapshot of the cache's counters, reported by
// the wall-clock harness and cmd/bossbench.
type Stats struct {
	// Hits and Misses are totals across both client classes; the
	// Posting*/Doc* fields below split them so a hit-rate regression in
	// one class cannot hide behind the other.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Bypasses counts publishes that could not be inserted (entry larger
	// than a shard budget, or every resident entry pinned).
	Bypasses int64 `json:"bypasses"`

	// Per-class lookup split: posting blocks (ClassPosting) vs document
	// blocks (ClassDoc).
	PostingHits   int64 `json:"posting_hits"`
	PostingMisses int64 `json:"posting_misses"`
	DocHits       int64 `json:"doc_hits"`
	DocMisses     int64 `json:"doc_misses"`

	ResidentEntries int64 `json:"resident_entries"`
	ResidentBytes   int64 `json:"resident_bytes"`
	PinnedEntries   int64 `json:"pinned_entries"`
	BudgetBytes     int64 `json:"budget_bytes"`

	// ServedBytes is the decoded bytes returned by hits — traffic the SCM
	// device and the decode paths never saw. DocServedBytes is the
	// doc-class share of it.
	ServedBytes    int64 `json:"served_bytes"`
	DocServedBytes int64 `json:"doc_served_bytes"`
	// ServedPostings counts postings whose decode was avoided by a hit.
	ServedPostings int64 `json:"served_postings"`

	Epoch  uint64 `json:"epoch"`
	Shards int    `json:"shards"`
}

// HitRate returns hits / (hits + misses) across both classes, or 0
// before any lookup.
func (s Stats) HitRate() float64 {
	return rate(s.Hits, s.Misses)
}

// PostingHitRate returns the posting-class hit rate.
func (s Stats) PostingHitRate() float64 { return rate(s.PostingHits, s.PostingMisses) }

// DocHitRate returns the doc-class hit rate.
func (s Stats) DocHitRate() float64 { return rate(s.DocHits, s.DocMisses) }

func rate(hits, misses int64) float64 {
	if t := hits + misses; t > 0 {
		return float64(hits) / float64(t)
	}
	return 0
}

// Stats snapshots all shards. It takes each shard lock in turn, so the
// numbers are per-shard consistent but not a global atomic cut.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{Epoch: c.epoch.Load(), Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.PostingHits += s.hits[ClassPosting]
		st.PostingMisses += s.misses[ClassPosting]
		st.DocHits += s.hits[ClassDoc]
		st.DocMisses += s.misses[ClassDoc]
		st.Hits += s.hits[ClassPosting] + s.hits[ClassDoc]
		st.Misses += s.misses[ClassPosting] + s.misses[ClassDoc]
		st.Evictions += s.evictions
		st.Bypasses += s.bypasses
		st.ResidentEntries += int64(len(s.ring))
		st.ResidentBytes += s.bytes
		st.BudgetBytes += s.budget
		st.ServedBytes += s.servedBytes[ClassPosting] + s.servedBytes[ClassDoc]
		st.DocServedBytes += s.servedBytes[ClassDoc]
		st.ServedPostings += s.servedPostings
		for _, e := range s.ring {
			if e.refs.Load() > 0 {
				st.PinnedEntries++
			}
		}
		s.mu.Unlock()
	}
	return st
}

// checkInvariants verifies per-shard accounting: resident bytes equal the
// sum of entry charges, never exceed the budget, the ring and map agree,
// and every fresh map entry is on the ring. Tests and the fuzz target call
// it after every operation.
func (c *Cache) checkInvariants() error {
	if c == nil {
		return nil
	}
	epoch := c.epoch.Load()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var sum int64
		onRing := make(map[*Entry]bool, len(s.ring))
		for _, e := range s.ring {
			sum += e.bytes
			if onRing[e] {
				s.mu.Unlock()
				return fmt.Errorf("shard %d: entry %v on ring twice", i, e.key)
			}
			onRing[e] = true
			if !e.resident {
				s.mu.Unlock()
				return fmt.Errorf("shard %d: non-resident entry %v on ring", i, e.key)
			}
		}
		if sum != s.bytes {
			s.mu.Unlock()
			return fmt.Errorf("shard %d: bytes=%d but ring sums to %d", i, s.bytes, sum)
		}
		if s.bytes > s.budget {
			s.mu.Unlock()
			return fmt.Errorf("shard %d: resident %d exceeds budget %d", i, s.bytes, s.budget)
		}
		for k, e := range s.m {
			if e.key != k {
				s.mu.Unlock()
				return fmt.Errorf("shard %d: map key %v holds entry keyed %v", i, k, e.key)
			}
			if e.epoch == epoch && !onRing[e] {
				s.mu.Unlock()
				return fmt.Errorf("shard %d: fresh map entry %v missing from ring", i, k)
			}
		}
		s.mu.Unlock()
	}
	return nil
}
