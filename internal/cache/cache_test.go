package cache

import "testing"

// fill builds docs/tfs content derived from the key so tests can verify an
// entry still holds the block it was published under.
func fill(e *Entry, k Key, n int) (docs, tfs []uint32) {
	docs, tfs = e.DocsBuf(n), e.TfsBuf(n)
	for i := 0; i < n; i++ {
		docs = append(docs, uint32(k.List)*1000+k.Block*100+uint32(i))
		tfs = append(tfs, uint32(k.List)+k.Block+uint32(i))
	}
	return docs, tfs
}

// checkContent verifies a pinned entry's slices carry fill(k, n)'s pattern.
func checkContent(t *testing.T, e *Entry, k Key, n int) {
	t.Helper()
	if len(e.Docs()) != n || len(e.Tfs()) != n {
		t.Fatalf("key %v: got %d docs / %d tfs, want %d", k, len(e.Docs()), len(e.Tfs()), n)
	}
	for i := 0; i < n; i++ {
		if want := uint32(k.List)*1000 + k.Block*100 + uint32(i); e.Docs()[i] != want {
			t.Fatalf("key %v doc[%d] = %d, want %d", k, i, e.Docs()[i], want)
		}
		if want := uint32(k.List) + k.Block + uint32(i); e.Tfs()[i] != want {
			t.Fatalf("key %v tf[%d] = %d, want %d", k, i, e.Tfs()[i], want)
		}
	}
}

func mustInvariants(t *testing.T, c *Cache) {
	t.Helper()
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func publish(c *Cache, k Key, n int, cycles int64) *Entry {
	e := c.Reserve(n)
	docs, tfs := fill(e, k, n)
	return c.Publish(k, e, docs, tfs, cycles)
}

func TestHitMiss(t *testing.T) {
	c := NewSharded(1<<20, 1)
	k := Key{List: 7, Block: 3}
	if e := c.Get(k); e != nil {
		t.Fatal("Get on empty cache should miss")
	}
	e := publish(c, k, 128, 42)
	checkContent(t, e, k, 128)
	if e.Cycles() != 42 {
		t.Fatalf("cycles = %d, want 42", e.Cycles())
	}
	c.Release(e)
	mustInvariants(t, c)

	h := c.Get(k)
	if h == nil {
		t.Fatal("Get after Publish should hit")
	}
	checkContent(t, h, k, 128)
	if h.Cycles() != 42 {
		t.Fatalf("hit cycles = %d, want 42", h.Cycles())
	}
	c.Release(h)

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.ServedPostings != 128 {
		t.Fatalf("served postings = %d, want 128", st.ServedPostings)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
	mustInvariants(t, c)
}

func TestNilCache(t *testing.T) {
	var c *Cache
	if c.Get(Key{}) != nil {
		t.Fatal("nil cache Get should miss")
	}
	c.Release(nil)
	c.BumpEpoch()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if New(0) != nil {
		t.Fatal("New(0) should return nil (cache disabled)")
	}
}

// TestBudgetEviction checks the budget is a hard ceiling and CLOCK evicts
// cold entries first.
func TestBudgetEviction(t *testing.T) {
	const n = 128
	one := int64(2*n)*4 + entryOverheadBytes
	c := NewSharded(3*one, 1) // room for exactly 3 resident entries
	for i := 0; i < 3; i++ {
		e := publish(c, Key{List: uint64(i)}, n, 0)
		c.Release(e)
	}
	mustInvariants(t, c)
	if st := c.Stats(); st.ResidentEntries != 3 || st.Evictions != 0 {
		t.Fatalf("warm stats = %+v", st)
	}

	// Touch list 1 so its reference bit survives the first hand pass.
	h := c.Get(Key{List: 1})
	c.Release(h)

	// Inserting a 4th entry must evict exactly one. The hand starts at
	// list 0 (bit set at insert): it clears 0's bit, clears 1's freshly
	// re-set bit... second pass evicts 0 first.
	e := publish(c, Key{List: 3}, n, 0)
	c.Release(e)
	mustInvariants(t, c)
	st := c.Stats()
	if st.ResidentEntries != 3 || st.Evictions != 1 {
		t.Fatalf("after insert stats = %+v, want 3 resident / 1 eviction", st)
	}
	if st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, st.BudgetBytes)
	}
	// The recently-touched entry must still be resident (second chance).
	if h := c.Get(Key{List: 1}); h == nil {
		t.Fatal("recently-used entry was evicted; CLOCK second chance broken")
	} else {
		checkContent(t, h, Key{List: 1}, n)
		c.Release(h)
	}
}

// TestPinnedNotEvicted checks a pinned entry survives arbitrary insert
// pressure and its contents stay intact.
func TestPinnedNotEvicted(t *testing.T) {
	const n = 128
	one := int64(2*n)*4 + entryOverheadBytes
	c := NewSharded(2*one, 1)
	k := Key{List: 99}
	pinned := publish(c, k, n, 7) // hold the pin across the churn
	for i := 0; i < 50; i++ {
		e := publish(c, Key{List: uint64(i)}, n, 0)
		c.Release(e)
		mustInvariants(t, c)
	}
	checkContent(t, pinned, k, n)
	if h := c.Get(k); h == nil {
		t.Fatal("pinned entry evicted")
	} else {
		c.Release(h)
	}
	c.Release(pinned)
}

// TestBypass checks that when nothing can be evicted (all pinned), Publish
// hands the entry back un-inserted and the budget still holds.
func TestBypass(t *testing.T) {
	const n = 128
	one := int64(2*n)*4 + entryOverheadBytes
	c := NewSharded(one, 1) // room for exactly 1 resident entry
	a := publish(c, Key{List: 1}, n, 0)
	// a is pinned; a second publish cannot make room.
	b := publish(c, Key{List: 2}, n, 5)
	checkContent(t, b, Key{List: 2}, n)
	if b.Cycles() != 5 {
		t.Fatalf("bypass entry cycles = %d, want 5", b.Cycles())
	}
	mustInvariants(t, c)
	st := c.Stats()
	if st.Bypasses != 1 || st.ResidentEntries != 1 {
		t.Fatalf("stats = %+v, want 1 bypass / 1 resident", st)
	}
	// The bypass entry must stay readable until released even though it is
	// not in the cache.
	if h := c.Get(Key{List: 2}); h != nil {
		t.Fatal("bypass entry should not be findable")
	}
	checkContent(t, b, Key{List: 2}, n)
	c.Release(b)
	c.Release(a)

	// Oversized entries (bigger than a whole shard budget) always bypass.
	big := publish(c, Key{List: 3}, 4*n, 0)
	mustInvariants(t, c)
	if st := c.Stats(); st.Bypasses != 2 {
		t.Fatalf("oversized publish should bypass: %+v", st)
	}
	c.Release(big)
}

// TestPublishRace checks the loser of a concurrent publish gets the winner's
// entry back.
func TestPublishRace(t *testing.T) {
	c := NewSharded(1<<20, 1)
	k := Key{List: 5, Block: 2}
	w := publish(c, k, 32, 11)
	c.Release(w)

	// A second publisher for the same key (raced decode): must receive the
	// resident winner, not its own entry.
	e := c.Reserve(32)
	docs, tfs := fill(e, k, 32)
	got := c.Publish(k, e, docs, tfs, 999)
	if got.Cycles() != 11 {
		t.Fatalf("race loser got cycles %d, want winner's 11", got.Cycles())
	}
	checkContent(t, got, k, 32)
	c.Release(got)
	mustInvariants(t, c)
	if st := c.Stats(); st.ResidentEntries != 1 {
		t.Fatalf("duplicate publish left %d residents", st.ResidentEntries)
	}
}

// TestEpochInvalidation checks BumpEpoch makes entries invisible, reclaims
// unpinned ones, and leaves pinned ones readable until released.
func TestEpochInvalidation(t *testing.T) {
	c := NewSharded(1<<20, 1)
	cold := publish(c, Key{List: 1}, 16, 0)
	c.Release(cold)
	pinned := publish(c, Key{List: 2}, 16, 0)

	c.BumpEpoch()
	mustInvariants(t, c)
	if c.Get(Key{List: 1}) != nil || c.Get(Key{List: 2}) != nil {
		t.Fatal("stale entries must read as misses")
	}
	// The pinned entry's data must survive the bump while held.
	checkContent(t, pinned, Key{List: 2}, 16)
	c.Release(pinned)

	st := c.Stats()
	if st.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", st.Epoch)
	}
	if st.ResidentEntries > 1 {
		t.Fatalf("bump left %d residents", st.ResidentEntries)
	}

	// Publishing after the bump works in the new epoch.
	e := publish(c, Key{List: 1}, 16, 0)
	c.Release(e)
	if h := c.Get(Key{List: 1}); h == nil {
		t.Fatal("publish after bump should be visible")
	} else {
		c.Release(h)
	}
	mustInvariants(t, c)
}

// TestShardedSpread checks multi-shard construction distributes keys and
// keeps the aggregate budget.
func TestShardedSpread(t *testing.T) {
	c := New(1 << 20)
	if len(c.shards) == 0 || len(c.shards)&(len(c.shards)-1) != 0 {
		t.Fatalf("shard count %d not a power of two", len(c.shards))
	}
	for i := 0; i < 256; i++ {
		e := publish(c, Key{List: uint64(i), Block: uint32(i % 7)}, 8, 0)
		c.Release(e)
	}
	mustInvariants(t, c)
	for i := 0; i < 256; i++ {
		h := c.Get(Key{List: uint64(i), Block: uint32(i % 7)})
		if h == nil {
			t.Fatalf("key %d missing", i)
		}
		c.Release(h)
	}
}

// TestHitPathAllocs pins the zero-allocation guarantee of the hit path:
// Get + Release on a resident entry must not allocate.
func TestHitPathAllocs(t *testing.T) {
	c := New(1 << 20)
	k := Key{List: 1, Block: 0}
	e := publish(c, k, 128, 0)
	c.Release(e)
	avg := testing.AllocsPerRun(1000, func() {
		h := c.Get(k)
		if h == nil {
			t.Fatal("unexpected miss")
		}
		c.Release(h)
	})
	if avg != 0 {
		t.Fatalf("hit path allocates %v allocs/op, want 0", avg)
	}
}

// FuzzCLOCK drives a single-shard cache through a byte-coded op sequence
// and checks the accounting invariants after every operation: resident
// bytes never exceed the budget, ring and map agree, and pinned entries
// keep their published contents (no use-after-evict).
func FuzzCLOCK(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 6, 7})
	f.Add([]byte{10, 10, 10, 251, 10, 10})
	f.Add([]byte{0, 0, 0, 0, 252, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 128
		one := int64(2*n)*4 + entryOverheadBytes
		c := NewSharded(3*one, 1)
		type pin struct {
			e *Entry
			k Key
		}
		var pins []pin
		keyOf := func(b byte) Key { return Key{List: uint64(b % 8), Block: uint32(b / 8 % 4)} }
		for _, op := range ops {
			switch {
			case op == 250: // bump epoch
				c.BumpEpoch()
			case op == 251: // release all pins
				for _, p := range pins {
					c.Release(p.e)
				}
				pins = pins[:0]
			case op == 252: // release oldest pin
				if len(pins) > 0 {
					c.Release(pins[0].e)
					pins = pins[1:]
				}
			case op%3 == 0: // get (pin on hit)
				k := keyOf(op)
				if h := c.Get(k); h != nil {
					pins = append(pins, pin{h, k})
				}
			default: // publish (keep pinned)
				k := keyOf(op)
				e := c.Reserve(n)
				docs := e.DocsBuf(n)
				tfs := e.TfsBuf(n)
				for i := 0; i < n; i++ {
					docs = append(docs, uint32(k.List)*1000+k.Block*100+uint32(i))
					tfs = append(tfs, uint32(k.List)+k.Block+uint32(i))
				}
				got := c.Publish(k, e, docs, tfs, int64(op))
				pins = append(pins, pin{got, k})
			}
			if err := c.checkInvariants(); err != nil {
				t.Fatal(err)
			}
			// Every live pin must still read its published contents — an
			// evicted-and-recycled slab would show another key's pattern.
			for _, p := range pins {
				if len(p.e.Docs()) != n {
					t.Fatalf("pinned %v: %d docs, want %d", p.k, len(p.e.Docs()), n)
				}
				for i := 0; i < n; i++ {
					if want := uint32(p.k.List)*1000 + p.k.Block*100 + uint32(i); p.e.Docs()[i] != want {
						t.Fatalf("pinned %v doc[%d] = %d, want %d (use-after-evict)", p.k, i, p.e.Docs()[i], want)
					}
				}
			}
		}
		for _, p := range pins {
			c.Release(p.e)
		}
		if err := c.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
