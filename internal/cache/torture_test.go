package cache_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"boss/internal/cache"
)

// TestTorture hammers one cache from concurrent readers, publishers, and an
// epoch-bumper under a budget tight enough to force constant eviction. Run
// with -race. Every pinned entry's contents are validated against a
// key-derived sentinel, so an eviction recycling a pinned slab (or an epoch
// bump freeing one) shows up as corrupted data even when the race detector
// is off.
func TestTorture(t *testing.T) {
	const (
		readers   = 4
		keys      = 64
		blockLen  = 128
		opsPerG   = 3000
		budgetOne = int64(2*blockLen)*4 + 128 // entry charge incl. overhead
	)
	c := cache.NewSharded(budgetOne*8, 2) // hold ~8 of 64 keys: heavy churn

	keyOf := func(i int) cache.Key {
		return cache.Key{List: uint64(i % 16), Block: uint32(i / 16)}
	}
	check := func(e *cache.Entry, k cache.Key) {
		docs, tfs := e.Docs(), e.Tfs()
		if len(docs) != blockLen || len(tfs) != blockLen {
			t.Errorf("key %v: %d docs / %d tfs", k, len(docs), len(tfs))
			return
		}
		for i := range docs {
			if want := uint32(k.List)*10000 + k.Block*100 + uint32(i); docs[i] != want {
				t.Errorf("key %v doc[%d] = %d, want %d", k, i, docs[i], want)
				return
			}
		}
	}

	var hits, misses atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := seed*2654435761 + 1
			for op := 0; op < opsPerG; op++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := keyOf(int(rng>>33) % keys)
				if e := c.Get(k); e != nil {
					hits.Add(1)
					check(e, k)
					c.Release(e)
					continue
				}
				misses.Add(1)
				// Miss: decode (simulated) into a reserved slab and publish.
				e := c.Reserve(blockLen)
				docs, tfs := e.DocsBuf(blockLen), e.TfsBuf(blockLen)
				for i := 0; i < blockLen; i++ {
					docs = append(docs, uint32(k.List)*10000+k.Block*100+uint32(i))
					tfs = append(tfs, uint32(i))
				}
				got := c.Publish(k, e, docs, tfs, int64(k.List))
				check(got, k)
				c.Release(got)
			}
		}(uint64(g))
	}
	// The invalidator: concurrent epoch bumps while readers hold pins.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			c.BumpEpoch()
		}
	}()
	wg.Wait()

	st := c.Stats()
	if st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, st.BudgetBytes)
	}
	if st.PinnedEntries != 0 {
		t.Fatalf("%d entries still pinned after all releases", st.PinnedEntries)
	}
	if hits.Load()+misses.Load() != readers*opsPerG {
		t.Fatalf("lost ops: %d hits + %d misses != %d", hits.Load(), misses.Load(), readers*opsPerG)
	}
	t.Logf("torture: %d hits, %d misses, %d evictions, %d bypasses, epoch %d",
		st.Hits, st.Misses, st.Evictions, st.Bypasses, st.Epoch)
}
