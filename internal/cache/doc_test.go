package cache

import (
	"bytes"
	"testing"
)

// fillBytes builds a byte payload derived from the key.
func fillBytes(e *Entry, k Key, n int) []byte {
	b := e.ByteBuf(n)
	for i := range b {
		b[i] = byte(uint32(k.List)*31 + k.Block*7 + uint32(i))
	}
	return b
}

// TestDocClassRoundTrip publishes a doc-class byte entry and reads it
// back pinned and zero-copy, alongside a posting entry under the same
// (List, Block) — the Class field keeps the namespaces apart.
func TestDocClassRoundTrip(t *testing.T) {
	c := NewSharded(1<<20, 1)
	pk := Key{List: 7, Block: 3}
	dk := Key{List: 7, Block: 3, Class: ClassDoc}

	pe := c.Reserve(8)
	docs, tfs := fill(pe, pk, 8)
	pe = c.Publish(pk, pe, docs, tfs, 11)

	de := c.ReserveBytes(100)
	data := fillBytes(de, dk, 100)
	de = c.PublishBytes(dk, de, data, 22)
	if got := de.Data(); !bytes.Equal(got, data) {
		t.Fatal("published data mismatch")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	c.Release(pe)
	c.Release(de)

	// Both keys must hit independently, with the right payloads and the
	// right replay cycles.
	if e := c.Get(pk); e == nil || e.Cycles() != 11 || len(e.Docs()) != 8 || e.Data() != nil {
		t.Fatalf("posting key: %+v", e)
	} else {
		c.Release(e)
	}
	e := c.Get(dk)
	if e == nil || e.Cycles() != 22 || !bytes.Equal(e.Data(), data) || e.Docs() != nil {
		t.Fatalf("doc key: %+v", e)
	}
	c.Release(e)

	st := c.Stats()
	if st.PostingHits != 1 || st.DocHits != 1 || st.Hits != 2 {
		t.Fatalf("hit split: %+v", st)
	}
	if st.DocServedBytes != 100 || st.ServedBytes != 100+8*2*4 {
		t.Fatalf("served split: %+v", st)
	}
	if st.DocHitRate() != 1 || st.PostingHitRate() != 1 {
		t.Fatalf("rates: %+v", st)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDocClassMissSplit: misses are attributed to the class of the key
// looked up.
func TestDocClassMissSplit(t *testing.T) {
	c := NewSharded(1<<20, 1)
	if e := c.Get(Key{List: 1, Class: ClassDoc}); e != nil {
		t.Fatal("unexpected hit")
	}
	if e := c.Get(Key{List: 1}); e != nil {
		t.Fatal("unexpected hit")
	}
	st := c.Stats()
	if st.DocMisses != 1 || st.PostingMisses != 1 || st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("miss split: %+v", st)
	}
	if st.DocHitRate() != 0 || st.HitRate() != 0 {
		t.Fatalf("rates: %+v", st)
	}
}

// TestDocClassEpochInvalidation: BumpEpoch stales doc-class entries just
// like posting entries.
func TestDocClassEpochInvalidation(t *testing.T) {
	c := NewSharded(1<<20, 1)
	k := Key{List: 9, Class: ClassDoc}
	e := c.ReserveBytes(64)
	data := fillBytes(e, k, 64)
	e = c.PublishBytes(k, e, data, 5)
	c.Release(e)
	c.BumpEpoch()
	if got := c.Get(k); got != nil {
		t.Fatal("stale doc entry served after BumpEpoch")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDocClassSlabReuse: a recycled entry's byte slab is reused when big
// enough, and the budget charge accounts for both slabs.
func TestDocClassSlabReuse(t *testing.T) {
	c := NewSharded(1<<20, 1)
	k := Key{List: 2, Class: ClassDoc}
	e := c.ReserveBytes(10)
	data := fillBytes(e, k, 10)
	e = c.PublishBytes(k, e, data, 1)
	charge := e.bytes
	if charge < int64(cap(e.bbuf))+entryOverheadBytes {
		t.Fatalf("budget charge %d does not cover byte slab %d", charge, cap(e.bbuf))
	}
	c.Release(e)
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
