// Package perf defines the per-query work metrics every engine model
// (Lucene baseline, IIU, BOSS) produces, and composes them into latency and
// multi-core throughput figures under a memory-device model.
//
// The composition is a roofline: a fully pipelined engine's single-query
// latency is the maximum of its compute time and its memory-channel
// occupancy, plus any serialized (dependency-chained) random accesses, which
// cannot be hidden by pipelining. Multi-core throughput is the minimum of
// the compute ceiling (cores / per-query time), the memory-bandwidth ceiling
// (1 / per-query channel occupancy), and the host-interconnect ceiling.
// These are exactly the bottlenecks the paper's Figures 9-13 trace.
package perf

import (
	"boss/internal/mem"
	"boss/internal/sim"
)

// Metrics accumulates the work one query performs.
type Metrics struct {
	// Traffic in bytes by pattern/direction against the local device.
	SeqReadBytes  int64
	RandReadBytes int64
	WriteBytes    int64
	// RandAccesses counts random-read operations (each rounded up to the
	// device granularity for bandwidth purposes).
	RandAccesses int64
	// DependentRandAccesses counts random reads that are serialized by a
	// data dependency (e.g. binary-search probes); they each pay full
	// device latency and cannot be pipelined.
	DependentRandAccesses int64
	// SerialFetchHops counts exposed device round trips in an engine's
	// fetch pipeline: with a finite number of outstanding block requests,
	// every queue-depth's worth of fetches exposes one full read latency.
	SerialFetchHops int64
	// HostBytes is traffic over the shared host interconnect.
	HostBytes int64
	// ComputeTime is the engine's pipeline/CPU busy time for the query.
	ComputeTime sim.Duration
	// Cat breaks device traffic down by Figure 15 category (bytes). A fixed
	// array indexed by mem.Category: the engines charge every block and
	// every scored document here, so the accounting must not hash.
	Cat [mem.NumCategories]int64
	// CatAcc counts device accesses per category (Figure 15 plots access
	// counts; block loads, line fills and spill bursts each count once).
	CatAcc [mem.NumCategories]int64

	// Work counters for Figure 14-style analyses.
	BlocksFetched    int64
	BlocksSkipped    int64
	DocsEvaluated    int64
	PostingsDecoded  int64
	MembershipProbes int64

	// CacheHits and CacheSeqReadBytes model the what-if DRAM block cache
	// (core.Options.ModelDRAMCache): blocks served decoded out of the
	// device's DRAM tier, charged at DRAM sequential bandwidth instead of
	// SCM. Both stay zero with the flag off, so every reproduction figure
	// is unaffected by the host-side cache.
	CacheHits         int64
	CacheSeqReadBytes int64

	// Resilience counters (PR 5). Both stay zero with an empty
	// FaultPlan, so every reproduction figure is unaffected.
	//
	// TransientRetries counts block reads re-issued after an injected
	// transient fault (each retry re-streams the block, so its traffic
	// also appears in SeqReadBytes).
	TransientRetries int64
	// IntegrityFailures counts blocks whose CRC/ECC verification
	// failed — injected uncorrectable media errors and real checksum
	// mismatches both land here.
	IntegrityFailures int64

	// Fetch-phase counters (PR 7). Document fetches charge their device
	// traffic under mem.CatLoadDoc — outside the Figure 15 display list —
	// and both counters stay zero in search-only runs, so every
	// reproduction figure is unaffected.
	//
	// DocsFetched counts documents returned by the fetch engine.
	DocsFetched int64
	// DocBlocksFetched counts document-store block fetches (cache hits
	// replay the same charge, so the count is cache-independent).
	DocBlocksFetched int64
}

// NewMetrics returns an empty metrics record.
func NewMetrics() *Metrics {
	return &Metrics{}
}

// AddSeqRead charges size bytes of sequential device reads to category.
//
//boss:hotpath one call per fetched block and per scored document.
func (m *Metrics) AddSeqRead(size int64, category mem.Category) {
	m.SeqReadBytes += size
	m.Cat[category] += size
	m.CatAcc[category]++
}

// AddRandRead charges one random device read of size bytes to category.
// dependent marks reads serialized by data dependencies.
func (m *Metrics) AddRandRead(size int64, category mem.Category, dependent bool) {
	m.RandReadBytes += size
	m.RandAccesses++
	if dependent {
		m.DependentRandAccesses++
	}
	m.Cat[category] += size
	m.CatAcc[category]++
}

// AddWrite charges size bytes of device writes to category.
func (m *Metrics) AddWrite(size int64, category mem.Category) {
	m.WriteBytes += size
	m.Cat[category] += size
	m.CatAcc[category]++
}

// AddHost charges size bytes over the host interconnect (also recorded
// under category for breakdowns).
func (m *Metrics) AddHost(size int64, category mem.Category) {
	m.HostBytes += size
}

// AddHostWrite records a result store that crosses the interconnect into
// host memory: it appears in the category breakdown and in link traffic,
// but does not occupy the local device's channels.
func (m *Metrics) AddHostWrite(size int64, category mem.Category) {
	m.HostBytes += size
	m.Cat[category] += size
	m.CatAcc[category]++
}

// AddCacheRead charges size bytes served decoded from the modeled DRAM
// block cache (ModelDRAMCache hits). DRAM traffic occupies its own
// channels, so it is kept out of the SCM byte counters and priced
// separately by MemOccupancy.
func (m *Metrics) AddCacheRead(size int64) {
	m.CacheSeqReadBytes += size
	m.Cat[mem.CatLoadList] += size
	m.CatAcc[mem.CatLoadList]++
}

// AddCompute adds pipeline/CPU busy time.
func (m *Metrics) AddCompute(d sim.Duration) { m.ComputeTime += d }

// Merge adds other into m.
func (m *Metrics) Merge(other *Metrics) {
	m.SeqReadBytes += other.SeqReadBytes
	m.RandReadBytes += other.RandReadBytes
	m.WriteBytes += other.WriteBytes
	m.RandAccesses += other.RandAccesses
	m.DependentRandAccesses += other.DependentRandAccesses
	m.SerialFetchHops += other.SerialFetchHops
	m.HostBytes += other.HostBytes
	m.ComputeTime += other.ComputeTime
	m.BlocksFetched += other.BlocksFetched
	m.BlocksSkipped += other.BlocksSkipped
	m.DocsEvaluated += other.DocsEvaluated
	m.PostingsDecoded += other.PostingsDecoded
	m.MembershipProbes += other.MembershipProbes
	m.CacheHits += other.CacheHits
	m.CacheSeqReadBytes += other.CacheSeqReadBytes
	m.TransientRetries += other.TransientRetries
	m.IntegrityFailures += other.IntegrityFailures
	m.DocsFetched += other.DocsFetched
	m.DocBlocksFetched += other.DocBlocksFetched
	for k, v := range other.Cat {
		m.Cat[k] += v
	}
	for k, v := range other.CatAcc {
		m.CatAcc[k] += v
	}
}

// Scale multiplies all counters by 1/n, for averaging over n queries.
func (m *Metrics) Scale(n int64) {
	if n <= 1 {
		return
	}
	m.SeqReadBytes /= n
	m.RandReadBytes /= n
	m.WriteBytes /= n
	m.RandAccesses /= n
	m.DependentRandAccesses /= n
	m.SerialFetchHops /= n
	m.HostBytes /= n
	m.ComputeTime /= sim.Duration(n)
	m.BlocksFetched /= n
	m.BlocksSkipped /= n
	m.DocsEvaluated /= n
	m.PostingsDecoded /= n
	m.MembershipProbes /= n
	m.CacheHits /= n
	m.CacheSeqReadBytes /= n
	m.TransientRetries /= n
	m.IntegrityFailures /= n
	m.DocsFetched /= n
	m.DocBlocksFetched /= n
	for k := range m.Cat {
		m.Cat[k] /= n
	}
	for k := range m.CatAcc {
		m.CatAcc[k] /= n
	}
}

// DeviceBytes reports total device traffic (reads + writes).
func (m *Metrics) DeviceBytes() int64 {
	return m.SeqReadBytes + m.RandReadBytes + m.WriteBytes
}

// MemOccupancy computes how long the query occupies the device's channels
// under cfg: the aggregate transfer time of all its traffic at the
// pattern-appropriate bandwidths (random reads rounded up to the device
// granularity).
func (m *Metrics) MemOccupancy(cfg mem.Config) sim.Duration {
	randEffective := float64(m.RandReadBytes)
	if m.RandAccesses > 0 {
		avg := float64(m.RandReadBytes) / float64(m.RandAccesses)
		g := float64(cfg.Granularity)
		rounded := (int64(avg) + int64(g) - 1) / int64(g) * int64(g)
		randEffective = float64(rounded * m.RandAccesses)
	}
	secs := float64(m.SeqReadBytes)/(cfg.SeqReadGBs*1e9) +
		randEffective/(cfg.RandReadGBs*1e9) +
		float64(m.WriteBytes)/(cfg.WriteGBs*1e9)
	if m.CacheSeqReadBytes > 0 {
		// Modeled DRAM block-cache hits stream from the DRAM tier, which
		// has its own channels; they only matter when DRAM becomes the
		// bottleneck, so charge them at DRAM sequential bandwidth.
		secs += float64(m.CacheSeqReadBytes) / (mem.DRAM().SeqReadGBs * 1e9)
	}
	return sim.FromSeconds(secs)
}

// Latency computes single-core query latency under cfg: compute and
// pipelined memory traffic overlap (roofline max), while dependency-chained
// random accesses serialize and each pays the device read latency.
func (m *Metrics) Latency(cfg mem.Config) sim.Duration {
	t := m.ComputeTime
	if occ := m.MemOccupancy(cfg); occ > t {
		t = occ
	}
	return t + sim.Duration(m.DependentRandAccesses+m.SerialFetchHops)*cfg.ReadLatency
}

// Throughput computes queries/second for `cores` engines sharing one
// device node and one host link, given the average per-query metrics.
func (m *Metrics) Throughput(cores int, cfg mem.Config, linkGBs float64) float64 {
	lat := sim.Seconds(m.Latency(cfg))
	if lat <= 0 {
		return 0
	}
	qps := float64(cores) / lat
	if occ := sim.Seconds(m.MemOccupancy(cfg)); occ > 0 {
		if memQPS := 1 / occ; memQPS < qps {
			qps = memQPS
		}
	}
	if m.HostBytes > 0 && linkGBs > 0 {
		if linkQPS := linkGBs * 1e9 / float64(m.HostBytes); linkQPS < qps {
			qps = linkQPS
		}
	}
	return qps
}

// Bandwidth reports the device bandwidth (GB/s) the engine consumes when
// running at the given query throughput.
func (m *Metrics) Bandwidth(qps float64) float64 {
	return qps * float64(m.DeviceBytes()) / 1e9
}
