package perf

import (
	"testing"

	"boss/internal/mem"
	"boss/internal/sim"
)

func TestAccumulationAndCategories(t *testing.T) {
	m := NewMetrics()
	m.AddSeqRead(1000, mem.CatLoadList)
	m.AddRandRead(4, mem.CatLoadScore, false)
	m.AddRandRead(256, mem.CatLoadList, true)
	m.AddWrite(100, mem.CatStoreInter)
	m.AddHost(80, mem.CatStoreResult)
	m.AddCompute(5 * sim.Microsecond)

	if m.SeqReadBytes != 1000 || m.RandReadBytes != 260 || m.WriteBytes != 100 {
		t.Fatalf("bytes wrong: %+v", m)
	}
	if m.RandAccesses != 2 || m.DependentRandAccesses != 1 {
		t.Fatalf("access counts wrong: %+v", m)
	}
	if m.Cat[mem.CatLoadList] != 1256 {
		t.Fatalf("LD List category = %d", m.Cat[mem.CatLoadList])
	}
	if m.DeviceBytes() != 1360 {
		t.Fatalf("device bytes = %d", m.DeviceBytes())
	}
	if m.HostBytes != 80 {
		t.Fatalf("host bytes = %d", m.HostBytes)
	}
}

func TestMergeAndScale(t *testing.T) {
	a := NewMetrics()
	a.AddSeqRead(100, mem.CatLoadList)
	a.AddCompute(sim.Microsecond)
	a.DocsEvaluated = 10
	b := NewMetrics()
	b.AddSeqRead(300, mem.CatLoadList)
	b.AddCompute(3 * sim.Microsecond)
	b.DocsEvaluated = 30

	sum := NewMetrics()
	sum.Merge(a)
	sum.Merge(b)
	if sum.SeqReadBytes != 400 || sum.DocsEvaluated != 40 {
		t.Fatalf("merge wrong: %+v", sum)
	}
	sum.Scale(2)
	if sum.SeqReadBytes != 200 || sum.DocsEvaluated != 20 || sum.ComputeTime != 2*sim.Microsecond {
		t.Fatalf("scale wrong: %+v", sum)
	}
	if sum.Cat[mem.CatLoadList] != 200 {
		t.Fatalf("scaled category = %d", sum.Cat[mem.CatLoadList])
	}
}

func TestMemOccupancyPatterns(t *testing.T) {
	cfg := mem.SCM()
	seq := NewMetrics()
	seq.AddSeqRead(1<<20, mem.CatLoadList)
	rnd := NewMetrics()
	for i := 0; i < 4096; i++ {
		rnd.AddRandRead(256, mem.CatLoadList, false)
	}
	// Same byte volume; random must take ~25.6/6.6x longer.
	ratio := float64(rnd.MemOccupancy(cfg)) / float64(seq.MemOccupancy(cfg))
	if ratio < 3.5 || ratio > 4.3 {
		t.Fatalf("rand/seq occupancy ratio = %.2f, want ~3.9", ratio)
	}
}

func TestMemOccupancyRoundsRandomReads(t *testing.T) {
	cfg := mem.SCM()
	tiny := NewMetrics()
	tiny.AddRandRead(4, mem.CatLoadScore, false)
	full := NewMetrics()
	full.AddRandRead(256, mem.CatLoadScore, false)
	if tiny.MemOccupancy(cfg) != full.MemOccupancy(cfg) {
		t.Fatal("4B random read should cost a full 256B line")
	}
}

func TestLatencyRoofline(t *testing.T) {
	cfg := mem.SCM()
	m := NewMetrics()
	m.AddCompute(10 * sim.Microsecond)
	m.AddSeqRead(1000, mem.CatLoadList) // far below 10µs of traffic
	if m.Latency(cfg) != 10*sim.Microsecond {
		t.Fatalf("compute-bound latency = %v", m.Latency(cfg))
	}
	// Now make memory dominate.
	m.AddSeqRead(10<<20, mem.CatLoadList)
	if m.Latency(cfg) <= 10*sim.Microsecond {
		t.Fatal("memory-bound latency should exceed compute time")
	}
}

func TestLatencyChargesDependentAccesses(t *testing.T) {
	cfg := mem.SCM()
	m := NewMetrics()
	m.AddCompute(sim.Microsecond)
	base := m.Latency(cfg)
	for i := 0; i < 100; i++ {
		m.AddRandRead(256, mem.CatLoadList, true)
	}
	withDeps := m.Latency(cfg)
	if withDeps-base < 100*cfg.ReadLatency {
		t.Fatalf("dependent accesses under-charged: %v -> %v", base, withDeps)
	}
}

func TestThroughputComputeCeiling(t *testing.T) {
	cfg := mem.SCM()
	m := NewMetrics()
	m.AddCompute(sim.Millisecond) // 1 ms/query, negligible memory
	qps1 := m.Throughput(1, cfg, mem.DefaultLinkGBs)
	qps8 := m.Throughput(8, cfg, mem.DefaultLinkGBs)
	if qps1 < 990 || qps1 > 1010 {
		t.Fatalf("1-core QPS = %v, want ~1000", qps1)
	}
	if qps8 < 7900 || qps8 > 8100 {
		t.Fatalf("8-core QPS = %v, want ~8000 (compute-bound scales linearly)", qps8)
	}
}

func TestThroughputMemoryCeiling(t *testing.T) {
	cfg := mem.SCM()
	m := NewMetrics()
	m.AddCompute(10 * sim.Microsecond)
	m.AddSeqRead(25_600_000, mem.CatLoadList) // 1 ms of node bandwidth per query
	// Regardless of cores, the node caps throughput at ~1000 QPS.
	qps8 := m.Throughput(8, cfg, mem.DefaultLinkGBs)
	qps16 := m.Throughput(16, cfg, mem.DefaultLinkGBs)
	if qps8 < 990 || qps8 > 1010 {
		t.Fatalf("bandwidth-bound QPS = %v, want ~1000", qps8)
	}
	if qps16 > qps8*1.01 {
		t.Fatal("adding cores must not beat the bandwidth ceiling")
	}
}

func TestThroughputLinkCeiling(t *testing.T) {
	cfg := mem.SCM()
	m := NewMetrics()
	m.AddCompute(sim.Microsecond)
	m.AddHost(64_000_000, mem.CatStoreResult) // 1 ms of link time per query
	qps := m.Throughput(64, cfg, mem.DefaultLinkGBs)
	if qps < 990 || qps > 1010 {
		t.Fatalf("link-bound QPS = %v, want ~1000", qps)
	}
	// A tiny result (hardware top-k) lifts the ceiling.
	m2 := NewMetrics()
	m2.AddCompute(sim.Microsecond)
	m2.AddHost(8000, mem.CatStoreResult)
	if m2.Throughput(64, cfg, mem.DefaultLinkGBs) <= qps {
		t.Fatal("smaller host traffic should allow higher throughput")
	}
}

func TestBandwidth(t *testing.T) {
	m := NewMetrics()
	m.AddSeqRead(1_000_000, mem.CatLoadList)
	if got := m.Bandwidth(1000); got != 1.0 {
		t.Fatalf("bandwidth = %v GB/s, want 1", got)
	}
}

func TestZeroMetrics(t *testing.T) {
	m := NewMetrics()
	if m.Latency(mem.SCM()) != 0 {
		t.Fatal("empty metrics should have zero latency")
	}
	if m.Throughput(8, mem.SCM(), mem.DefaultLinkGBs) != 0 {
		t.Fatal("empty metrics throughput should be zero, not Inf")
	}
}
