package topk

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func selectors(k int) map[string]Selector {
	return map[string]Selector{
		"heap":  NewHeap(k),
		"shift": NewShiftRegister(k),
	}
}

func TestBasicTopK(t *testing.T) {
	for name, s := range selectors(3) {
		t.Run(name, func(t *testing.T) {
			s.Insert(1, 1.0)
			s.Insert(2, 5.0)
			s.Insert(3, 3.0)
			s.Insert(4, 4.0)
			s.Insert(5, 0.5)
			got := s.Results()
			want := []Entry{{2, 5.0}, {4, 4.0}, {3, 3.0}}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("results = %v, want %v", got, want)
			}
		})
	}
}

func TestThreshold(t *testing.T) {
	for name, s := range selectors(2) {
		t.Run(name, func(t *testing.T) {
			if !math.IsInf(s.Threshold(), -1) {
				t.Fatal("threshold of empty queue should be -Inf")
			}
			s.Insert(1, 3.0)
			if !math.IsInf(s.Threshold(), -1) {
				t.Fatal("threshold of non-full queue should be -Inf")
			}
			s.Insert(2, 7.0)
			if s.Threshold() != 3.0 {
				t.Fatalf("threshold = %v, want 3", s.Threshold())
			}
			s.Insert(3, 5.0)
			if s.Threshold() != 5.0 {
				t.Fatalf("threshold after displacement = %v, want 5", s.Threshold())
			}
			if !s.Full() {
				t.Fatal("queue should report full")
			}
		})
	}
}

func TestTieBreakByDocID(t *testing.T) {
	for name, s := range selectors(2) {
		t.Run(name, func(t *testing.T) {
			s.Insert(9, 2.0)
			s.Insert(4, 2.0)
			s.Insert(7, 2.0)
			got := s.Results()
			want := []Entry{{4, 2.0}, {7, 2.0}}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("tie-break results = %v, want %v", got, want)
			}
		})
	}
}

func TestKOne(t *testing.T) {
	for name, s := range selectors(1) {
		t.Run(name, func(t *testing.T) {
			s.Insert(1, 1)
			s.Insert(2, 9)
			s.Insert(3, 5)
			got := s.Results()
			if len(got) != 1 || got[0].DocID != 2 {
				t.Fatalf("k=1 results = %v", got)
			}
		})
	}
}

func TestZeroKPanics(t *testing.T) {
	for _, ctor := range []func(){func() { NewHeap(0) }, func() { NewShiftRegister(0) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("k=0 should panic")
				}
			}()
			ctor()
		}()
	}
}

func TestFewerThanKInsertions(t *testing.T) {
	for name, s := range selectors(100) {
		t.Run(name, func(t *testing.T) {
			s.Insert(5, 1.5)
			s.Insert(3, 2.5)
			got := s.Results()
			want := []Entry{{3, 2.5}, {5, 1.5}}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("results = %v, want %v", got, want)
			}
			if s.Len() != 2 {
				t.Fatalf("Len = %d", s.Len())
			}
		})
	}
}

// referenceTopK computes top-k by full sort, the ground truth.
func referenceTopK(entries []Entry, k int) []Entry {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

func TestAgainstReferenceProperty(t *testing.T) {
	f := func(seed int64, kSeed uint8, nSeed uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kSeed)%50 + 1
		n := int(nSeed) % 500
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{
				DocID: uint32(rng.Intn(1 << 20)),
				Score: float64(rng.Intn(64)) / 4, // coarse scores force ties
			}
		}
		want := referenceTopK(entries, k)
		for _, s := range []Selector{NewHeap(k), NewShiftRegister(k)} {
			for _, e := range entries {
				s.Insert(e.DocID, e.Score)
			}
			got := s.Results()
			if len(got) == 0 && len(want) == 0 {
				continue // nil vs empty slice are the same result
			}
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapAndShiftAgreeOnRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	h := NewHeap(1000)
	q := NewShiftRegister(1000)
	for i := 0; i < 20000; i++ {
		d := uint32(i)
		s := rng.Float64() * 30
		h.Insert(d, s)
		q.Insert(d, s)
	}
	if !reflect.DeepEqual(h.Results(), q.Results()) {
		t.Fatal("heap and shift register disagree")
	}
	if h.Threshold() != q.Threshold() {
		t.Fatalf("thresholds disagree: %v vs %v", h.Threshold(), q.Threshold())
	}
}

func TestShiftRegisterActivityCounters(t *testing.T) {
	q := NewShiftRegister(4)
	// Ascending scores: every insert lands at the head and shifts the rest.
	for i := 0; i < 4; i++ {
		q.Insert(uint32(i), float64(i))
	}
	if q.Inserts() != 4 {
		t.Fatalf("inserts = %d", q.Inserts())
	}
	if q.Shifts() == 0 {
		t.Fatal("ascending insertions must cause shifts")
	}
	// An insert below the threshold causes no shifts.
	before := q.Shifts()
	q.Insert(99, -1)
	if q.Shifts() != before {
		t.Fatal("rejected insert should not shift")
	}
}

func TestThresholdNeverDecreases(t *testing.T) {
	f := func(scores []float64) bool {
		q := NewShiftRegister(8)
		prev := math.Inf(-1)
		for i, s := range scores {
			if math.IsNaN(s) {
				continue
			}
			q.Insert(uint32(i), s)
			th := q.Threshold()
			if th < prev {
				return false
			}
			prev = th
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 4096)
	for i := range scores {
		scores[i] = rng.Float64() * 20
	}
	b.Run("heap-k1000", func(b *testing.B) {
		s := NewHeap(1000)
		for i := 0; i < b.N; i++ {
			s.Insert(uint32(i), scores[i%len(scores)])
		}
	})
	b.Run("shift-k1000", func(b *testing.B) {
		s := NewShiftRegister(1000)
		for i := 0; i < b.N; i++ {
			s.Insert(uint32(i), scores[i%len(scores)])
		}
	})
}
