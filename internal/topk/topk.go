// Package topk implements top-k selection two ways: a software binary heap
// (what a host CPU runs, and what the Lucene baseline uses) and a model of
// BOSS's shift-register hardware priority queue, where an inserted entry is
// broadcast to all k slots and each slot locally decides to keep, shift, or
// load (Section IV-C, Top-k Module). Both produce identical results; the
// hardware model additionally counts shift activity for the energy model.
//
// Ordering: higher score first; ties broken toward the smaller docID so
// every implementation in the repository agrees on the exact result set.
package topk

import (
	"math"
	"sort"
)

// Entry is one scored document.
type Entry struct {
	DocID uint32
	Score float64
}

// less reports whether a ranks strictly better than b.
func less(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.DocID < b.DocID
}

// Selector accumulates scored documents and retains the best k.
type Selector interface {
	// Insert offers a scored document.
	Insert(docID uint32, score float64)
	// Threshold reports the current cutoff: the worst score in the queue
	// once full, or -Inf while the queue still has room. Early-termination
	// algorithms compare upper bounds against this.
	Threshold() float64
	// Full reports whether k entries are held.
	Full() bool
	// Results returns the retained entries, best first.
	Results() []Entry
	// Len reports the number of retained entries.
	Len() int
}

// --- software heap ---

// heapSelector is a size-bounded min-heap (worst retained entry at the
// root), the standard software top-k structure.
type heapSelector struct {
	k       int
	entries entryHeap
}

// NewHeap returns a software top-k selector retaining k entries.
func NewHeap(k int) Selector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &heapSelector{k: k}
}

// entryHeap is a min-heap by rank: the *worst* entry is at the root. The
// sift operations are open-coded rather than going through container/heap —
// its interface{} methods box every Entry pushed, and Insert runs once per
// scored document on the serving path.
type entryHeap []Entry

// worse reports whether h[i] ranks strictly worse than h[j].
func (h entryHeap) worse(i, j int) bool { return less(h[j], h[i]) }

func (h entryHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h entryHeap) down(i int) {
	n := len(h)
	for {
		worst := i
		if l := 2*i + 1; l < n && h.worse(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < n && h.worse(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

//boss:hotpath one call per scored document on the software serving path.
func (s *heapSelector) Insert(docID uint32, score float64) {
	e := Entry{DocID: docID, Score: score}
	if len(s.entries) < s.k {
		s.entries = append(s.entries, e)
		s.entries.up(len(s.entries) - 1)
		return
	}
	if less(e, s.entries[0]) {
		s.entries[0] = e
		s.entries.down(0)
	}
}

func (s *heapSelector) Threshold() float64 {
	if len(s.entries) < s.k {
		return math.Inf(-1)
	}
	return s.entries[0].Score
}

func (s *heapSelector) Full() bool { return len(s.entries) >= s.k }
func (s *heapSelector) Len() int   { return len(s.entries) }

func (s *heapSelector) Results() []Entry {
	out := make([]Entry, len(s.entries))
	copy(out, s.entries)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// --- hardware shift-register queue ---

// ShiftRegisterQueue models BOSS's hardware priority queue: k entries held
// in rank order in a shift register. An insertion is broadcast to every
// slot; slots below the insertion point shift toward the tail (dropping the
// last), and the slot at the insertion point loads the new entry. The model
// keeps the same results as the heap while counting slot-shift activity.
type ShiftRegisterQueue struct {
	k       int
	slots   []Entry // rank order, best first
	inserts int64
	shifts  int64
}

// NewShiftRegister returns a hardware-model top-k queue with k slots.
func NewShiftRegister(k int) *ShiftRegisterQueue {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &ShiftRegisterQueue{k: k, slots: make([]Entry, 0, k)}
}

var _ Selector = (*ShiftRegisterQueue)(nil)

// Reset empties the queue and re-sizes it to k slots, keeping the backing
// array so pooled queues do not re-allocate per query.
func (q *ShiftRegisterQueue) Reset(k int) {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	q.k = k
	if cap(q.slots) < k {
		q.slots = make([]Entry, 0, k)
	} else {
		q.slots = q.slots[:0]
	}
	q.inserts = 0
	q.shifts = 0
}

// Insert offers a scored document; each call models one broadcast cycle.
//
//boss:hotpath one call per scored document (the top-k module's broadcast).
func (q *ShiftRegisterQueue) Insert(docID uint32, score float64) {
	q.inserts++
	e := Entry{DocID: docID, Score: score}
	// Fast reject: a full queue whose tail outranks e cannot admit it. This
	// is exactly the binary search landing at pos == len(q.slots), so no
	// shift count or slot state changes — it just skips the O(log k) probe
	// for the overwhelmingly common below-threshold case.
	if len(q.slots) == q.k && !less(e, q.slots[q.k-1]) {
		return
	}
	// Find insertion point: the first slot that e outranks. Open-coded
	// binary search rather than sort.Search — the closure the latter takes
	// is an allocation hazard the hot path must not rely on escape
	// analysis to dodge (hotpathalloc).
	lo, hi := 0, len(q.slots)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(e, q.slots[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	pos := lo
	if pos == len(q.slots) {
		if len(q.slots) < q.k {
			q.slots = append(q.slots, e)
		}
		return
	}
	if len(q.slots) < q.k {
		q.slots = append(q.slots, Entry{})
	}
	// Slots from pos to the end shift one position tailward.
	q.shifts += int64(len(q.slots) - pos - 1)
	copy(q.slots[pos+1:], q.slots[pos:len(q.slots)-1])
	q.slots[pos] = e
}

// Threshold reports the cutoff score (see Selector).
func (q *ShiftRegisterQueue) Threshold() float64 {
	if len(q.slots) < q.k {
		return math.Inf(-1)
	}
	return q.slots[len(q.slots)-1].Score
}

// Full reports whether all k slots hold entries.
func (q *ShiftRegisterQueue) Full() bool { return len(q.slots) >= q.k }

// Len reports the number of occupied slots.
func (q *ShiftRegisterQueue) Len() int { return len(q.slots) }

// Results returns the retained entries, best first.
func (q *ShiftRegisterQueue) Results() []Entry {
	out := make([]Entry, len(q.slots))
	copy(out, q.slots)
	return out
}

// Inserts reports how many entries were offered (broadcast cycles).
func (q *ShiftRegisterQueue) Inserts() int64 { return q.inserts }

// Shifts reports the total number of slot shifts, a proxy for the module's
// dynamic switching activity.
func (q *ShiftRegisterQueue) Shifts() int64 { return q.shifts }
