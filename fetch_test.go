package boss

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

func fetchTestIndex(t *testing.T) *Index {
	t.Helper()
	b := NewBuilder()
	b.Add("alpha", "the quick brown fox jumps over the lazy dog")
	b.Add("beta", "pack my box with five dozen liquor jugs")
	b.Add("gamma", "the five boxing wizards jump quickly")
	b.Add("delta", "sphinx of black quartz judge my vow")
	return b.Build()
}

func TestFetchDocsUserIndex(t *testing.T) {
	ix := fetchTestIndex(t)
	acc := ix.Accelerator(AccelOptions{})
	docs, stats, err := acc.FetchDocs([]uint32{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("got %d docs", len(docs))
	}
	if docs[0].Name != "gamma" || docs[0].Text != "the five boxing wizards jump quickly" {
		t.Fatalf("doc 2 = %+v", docs[0])
	}
	if docs[1].Name != "alpha" || !strings.Contains(docs[1].Text, "quick brown fox") {
		t.Fatalf("doc 0 = %+v", docs[1])
	}
	if stats.DocsFetched != 2 || stats.DeviceBytes == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestSearchFetch(t *testing.T) {
	ix := fetchTestIndex(t)
	acc := ix.Accelerator(AccelOptions{})
	hits, docs, stats, err := acc.SearchFetch(`"five"`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || len(docs) != len(hits) {
		t.Fatalf("hits=%d docs=%d", len(hits), len(docs))
	}
	for i, h := range hits {
		if docs[i].DocID != h.DocID {
			t.Fatalf("hit %d: doc %d fetched %d", i, h.DocID, docs[i].DocID)
		}
		if docs[i].Name != h.Doc {
			t.Fatalf("hit %d: name %q vs %q", i, docs[i].Name, h.Doc)
		}
		if !strings.Contains(docs[i].Text, "five") {
			t.Fatalf("hit %d text %q misses the query term", i, docs[i].Text)
		}
	}
	if stats.DocsFetched != int64(len(hits)) {
		t.Fatalf("DocsFetched = %d, want %d", stats.DocsFetched, len(hits))
	}
	// Search-only stats must be a strict subset (fetch adds traffic).
	_, sOnly, err := acc.Search(`"five"`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeviceBytes <= sOnly.DeviceBytes {
		t.Fatalf("fetch added no device traffic: %d vs %d", stats.DeviceBytes, sOnly.DeviceBytes)
	}
	if sOnly.DocsFetched != 0 {
		t.Fatalf("search-only DocsFetched = %d", sOnly.DocsFetched)
	}
}

// TestSearchFetchSynthetic: synthetic indexes synthesize their document
// store lazily and deterministically.
func TestSearchFetchSynthetic(t *testing.T) {
	ix := BuildSynthetic(CCNewsLike, 0.004)
	acc := ix.Accelerator(AccelOptions{})
	hits, docs, _, err := acc.SearchFetch(`"`+ix.CommonTerm(2)+`"`, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(hits) || len(docs) == 0 {
		t.Fatalf("hits=%d docs=%d", len(hits), len(docs))
	}
	for i, d := range docs {
		if d.Name != hits[i].Doc || len(d.Text) == 0 {
			t.Fatalf("doc %d: %+v vs hit %+v", i, d, hits[i])
		}
	}
	// A second accelerator over a second identical build serves identical bytes.
	again := BuildSynthetic(CCNewsLike, 0.004).Accelerator(AccelOptions{})
	docs2, _, err := again.FetchDocs([]uint32{docs[0].DocID})
	if err != nil {
		t.Fatal(err)
	}
	if docs2[0].Text != docs[0].Text {
		t.Fatal("synthetic payloads nondeterministic across builds")
	}
}

// TestFetchStatsCacheIndependent: the facade-level replay invariant.
func TestFetchStatsCacheIndependent(t *testing.T) {
	ix := BuildSynthetic(CCNewsLike, 0.004)
	ids := make([]uint32, 0, 200)
	for i := 0; i < 200; i++ {
		ids = append(ids, uint32((i*13)%ix.NumDocs()))
	}
	run := func(cacheBytes int64) *SimStats {
		acc := ix.Accelerator(AccelOptions{CacheBytes: cacheBytes})
		_, stats, err := acc.FetchDocs(ids)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	plain, cached := run(-1), run(64<<20)
	if *plain != *cached {
		t.Fatalf("simulated stats diverge with cache:\nplain:  %+v\ncached: %+v", plain, cached)
	}
	// And the cache actually served the repeats.
	acc := ix.Accelerator(AccelOptions{})
	if _, _, err := acc.FetchDocs(ids); err != nil {
		t.Fatal(err)
	}
	if acc.DocCacheHitRate() == 0 {
		t.Fatal("doc cache never hit on repeated fetches")
	}
	if acc.PostingCacheHitRate() != 0 {
		t.Fatal("posting hit rate moved on doc-only traffic")
	}
}

// TestReadIndexNoDocStore: deserialized indexes carry postings only and
// fail fetches with the typed error.
func TestReadIndexNoDocStore(t *testing.T) {
	ix := fetchTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	acc := back.Accelerator(AccelOptions{})
	if _, _, err := acc.FetchDocs([]uint32{0}); !errors.Is(err, ErrNoDocStore) {
		t.Fatalf("err = %v, want ErrNoDocStore", err)
	}
	if _, _, _, err := acc.SearchFetch(`"quick"`, 3); !errors.Is(err, ErrNoDocStore) {
		t.Fatalf("SearchFetch err = %v, want ErrNoDocStore", err)
	}
	// Plain search still works.
	if _, _, err := acc.Search(`"quick"`, 3); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSearchFetch: the pooled deployment's fetch path.
func TestShardedSearchFetch(t *testing.T) {
	s, err := Shard(CCNewsLike, 0.004, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Any common term exists on a synthetic corpus.
	res, err := s.SearchFetchCtx(context.Background(), `"t1"`, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 0 {
		t.Fatalf("pristine deployment degraded: %b", res.Degraded)
	}
	if len(res.Docs) != len(res.Hits) || len(res.Hits) == 0 {
		t.Fatalf("hits=%d docs=%d", len(res.Hits), len(res.Docs))
	}
	for i, h := range res.Hits {
		if res.Docs[i].DocID != h.DocID || res.Docs[i].Name != h.Doc {
			t.Fatalf("hit %d mismatch: %+v vs %+v", i, h, res.Docs[i])
		}
	}
	if res.Stats.DocsFetched != int64(len(res.Hits)) {
		t.Fatalf("DocsFetched = %d", res.Stats.DocsFetched)
	}
	// Explicit fetch returns the same payloads.
	fr, err := s.FetchDocsCtx(context.Background(), []uint32{res.Hits[0].DocID})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Docs[0].Text != res.Docs[0].Text {
		t.Fatal("FetchDocsCtx and SearchFetchCtx disagree")
	}
	if s.DocCacheHitRate() == 0 {
		t.Fatal("cluster doc cache never hit on the re-fetch")
	}
}

// TestShardedFetchDegraded: a dead node's documents degrade gracefully
// through the facade.
func TestShardedFetchDegraded(t *testing.T) {
	s, err := Shard(CCNewsLike, 0.004, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.InjectFaults(FaultConfig{Seed: 1, DeadNodes: []int{1}})
	last := uint32(0)
	res, err := s.FetchDocsCtx(context.Background(), []uint32{last})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 0 || res.Docs[0].Text == "" {
		t.Fatalf("node 0 fetch should be clean: %+v", res)
	}
	// A query whose hits span both nodes degrades on node 1's docs.
	sf, err := s.SearchFetchCtx(context.Background(), `"t0"`, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Degraded&2 == 0 {
		t.Fatalf("dead node not flagged: %b", sf.Degraded)
	}
}
