package boss

import (
	"context"
	"fmt"
	"time"

	"boss/internal/core"
	"boss/internal/front"
	"boss/internal/pool"
	"boss/internal/query"
	"boss/internal/topk"
)

// Serving-tier admission errors, re-exported from the front door.
var (
	// ErrShed reports a low-priority request shed because its tenant
	// exceeded its rate. The request never executed.
	ErrShed = front.ErrShed
	// ErrOverloaded reports the admission queue was at capacity.
	ErrOverloaded = front.ErrOverloaded
)

// Priority places a serving request on the front door's shedding ladder:
// under pressure, PriorityLow sheds first and PriorityHigh degrades
// last. The zero value is PriorityNormal.
type Priority uint8

// Serving priorities.
const (
	PriorityNormal Priority = iota
	PriorityLow
	PriorityHigh
)

// TenantRate is one tenant's serving rate limit: Rate requests per
// second with a Burst ceiling (Burst defaults to Rate).
type TenantRate struct {
	Rate  float64
	Burst float64
}

// FrontConfig tunes the front-door serving tier. The zero value gets
// serving defaults (batches of 16, a 256-deep admission queue, 10 ms
// deadlines with 2 ms flush slack, degradation past 75% queue fill).
// Serving is opt-in: nothing changes for callers that never Serve.
type FrontConfig struct {
	// BatchTarget is the pending-request count that triggers a flush.
	BatchTarget int
	// MaxQueue bounds admitted-but-unfinished executions; beyond it
	// Submit returns ErrOverloaded.
	MaxQueue int
	// Timeout is the deadline budget for requests without one.
	Timeout time.Duration
	// FlushSlack is how far before the earliest admitted deadline the
	// pending batch is force-flushed.
	FlushSlack time.Duration
	// DegradeWatermark is the queue-fill fraction past which non-high
	// admissions degrade to partial-node answers (≥ 1 disables).
	DegradeWatermark float64
	// DegradeShards is how many memory nodes a degraded query skips
	// (default: half).
	DegradeShards int
	// Tenants configures per-tenant token buckets; absent tenants are
	// not rate-limited.
	Tenants map[string]TenantRate
}

func (c FrontConfig) toFront() front.Config {
	fc := front.Config{
		BatchTarget:      c.BatchTarget,
		MaxQueue:         c.MaxQueue,
		Timeout:          c.Timeout,
		FlushSlack:       c.FlushSlack,
		DegradeWatermark: c.DegradeWatermark,
		DegradeShards:    c.DegradeShards,
	}
	if len(c.Tenants) > 0 {
		fc.Tenants = make(map[string]front.TenantConfig, len(c.Tenants))
		for name, tr := range c.Tenants {
			fc.Tenants[name] = front.TenantConfig{Rate: tr.Rate, Burst: tr.Burst}
		}
	}
	return fc
}

// ServeRequest is one request to a serving-tier Server.
type ServeRequest struct {
	// Expr is the boolean query expression.
	Expr string
	// K is the top-k depth (<= 0 uses the deployment default).
	K int
	// Tenant names the rate-limit bucket the request draws from.
	Tenant string
	// Priority places the request on the shedding ladder.
	Priority Priority
	// Deadline is when the answer stops being useful (zero: now +
	// FrontConfig.Timeout).
	Deadline time.Time
}

// ServedResult is one served request's outcome.
type ServedResult struct {
	// Hits is the merged ranking.
	Hits []Hit
	// DedupHit reports the request coalesced onto another identical
	// in-flight query instead of executing its own.
	DedupHit bool
	// Degraded is a bitmask of memory nodes missing from Hits — shed
	// by the admission ladder or failed during execution. Zero means
	// the answer is complete.
	Degraded uint64
}

// ServeStats snapshots a Server's admission and batching counters.
type ServeStats struct {
	// Submitted counts parseable requests, admitted or not.
	Submitted uint64
	// Admitted counts distinct executions admitted.
	Admitted uint64
	// DedupHits counts requests answered by coalescing onto an
	// identical in-flight execution.
	DedupHits uint64
	// Degraded counts admissions downgraded to partial-node answers.
	Degraded uint64
	// Shed counts requests shed by rate limiting (ErrShed).
	Shed uint64
	// Rejected counts requests refused at queue capacity
	// (ErrOverloaded).
	Rejected uint64
	// Batches counts batches flushed to the execution engine.
	Batches uint64
	// Executed counts distinct executions completed.
	Executed uint64
}

// Server is a front-door serving tier over a deployment: a bounded
// admission queue feeding deadline-aware batch formation, coalescing of
// identical concurrent queries, and per-tenant rate limits with
// priority-aware shedding that degrades to partial-node answers before
// rejecting. Construct with ShardedIndex.Serve or Accelerator.Serve;
// Close releases it.
type Server struct {
	f    *front.Front
	hits func([]topk.Entry) []Hit
}

// ServeTicket is one waiter's handle on a submitted request. Exactly one
// of Wait or Cancel must be called.
type ServeTicket struct {
	s *Server
	t *front.Ticket
}

// Serve starts a front-door serving tier over the sharded deployment.
// Degraded admissions execute on a subset of memory nodes, reusing the
// resilient path's partial-answer machinery (ServedResult.Degraded uses
// the same node bitmask as BatchItem.Degraded).
func (s *ShardedIndex) Serve(cfg FrontConfig) (*Server, error) {
	f, err := front.New(cfg.toFront(), front.NewClusterBackend(s.cluster))
	if err != nil {
		return nil, err
	}
	return &Server{f: f, hits: func(entries []topk.Entry) []Hit {
		out := make([]Hit, len(entries))
		for i, e := range entries {
			out[i] = Hit{Doc: docName(s.names, e.DocID), DocID: e.DocID, Score: e.Score}
		}
		return out
	}}, nil
}

// Serve starts a front-door serving tier over the single-device
// accelerator. With one device there is nothing to degrade to, so the
// ladder sheds or rejects instead; coalescing, batching, and rate limits
// work identically to the sharded deployment.
func (a *Accelerator) Serve(cfg FrontConfig) (*Server, error) {
	f, err := front.New(cfg.toFront(), accelBackend{acc: a.acc})
	if err != nil {
		return nil, err
	}
	return &Server{f: f, hits: a.ix.hits}, nil
}

// accelBackend adapts the single-device accelerator to the front door's
// batch execution surface.
type accelBackend struct {
	acc *core.Accelerator
}

func (b accelBackend) Shards() int { return 1 }

func (b accelBackend) ExecuteBatch(ctx context.Context, qs []pool.BatchQuery, out []front.Out) {
	for i, q := range qs {
		node, err := query.Parse(q.Expr)
		if err != nil {
			out[i] = front.Out{Err: err}
			continue
		}
		k := q.K
		if k <= 0 {
			k = core.DefaultK
		}
		res, err := b.acc.RunCtx(ctx, node, k)
		if err != nil {
			out[i] = front.Out{Err: err}
			continue
		}
		out[i] = front.Out{TopK: res.TopK}
	}
}

// Submit admits one request asynchronously, returning a ticket to wait
// on. Identical concurrent queries (same canonical boolean form, same k)
// coalesce into one execution. Admission failures return ErrShed,
// ErrOverloaded, or the expression's parse error.
func (s *Server) Submit(req ServeRequest) (*ServeTicket, error) {
	t, err := s.f.Submit(front.Request{
		Expr:     req.Expr,
		K:        req.K,
		Tenant:   req.Tenant,
		Priority: front.Priority(req.Priority),
		Deadline: req.Deadline,
	})
	if err != nil {
		return nil, err
	}
	return &ServeTicket{s: s, t: t}, nil
}

// Wait blocks until the result is delivered or ctx dies. The ticket is
// spent either way.
func (tk *ServeTicket) Wait(ctx context.Context) (*ServedResult, error) {
	res := tk.t.Wait(ctx)
	if res.Err != nil {
		return nil, res.Err
	}
	return &ServedResult{
		Hits:     tk.s.hits(res.TopK),
		DedupHit: res.DedupHit,
		Degraded: res.Degraded,
	}, nil
}

// Cancel abandons the ticket without waiting; if delivery already won
// the race the delivered result is returned.
func (tk *ServeTicket) Cancel() (*ServedResult, error) {
	res := tk.t.Cancel()
	if res.Err != nil {
		return nil, res.Err
	}
	return &ServedResult{
		Hits:     tk.s.hits(res.TopK),
		DedupHit: res.DedupHit,
		Degraded: res.Degraded,
	}, nil
}

// Search is Submit + Wait.
func (s *Server) Search(ctx context.Context, req ServeRequest) (*ServedResult, error) {
	tk, err := s.Submit(req)
	if err != nil {
		return nil, err
	}
	return tk.Wait(ctx)
}

// Flush force-flushes the pending batch. Production traffic flushes on
// the size target and the deadline timer; Flush exists for drains,
// examples, and tests.
func (s *Server) Flush() { s.f.Flush() }

// Close flushes pending work, delivers every outstanding ticket, and
// rejects further Submits.
func (s *Server) Close() { s.f.Close() }

// Stats snapshots the serving counters.
func (s *Server) Stats() ServeStats {
	m := s.f.Metrics()
	return ServeStats{
		Submitted: m.Submitted,
		Admitted:  m.Admitted,
		DedupHits: m.DedupHits,
		Degraded:  m.Degraded,
		Shed:      m.ShedTokens,
		Rejected:  m.RejectedFull,
		Batches:   m.Batches,
		Executed:  m.Executed,
	}
}

// docName resolves a docID against an optional name table.
func docName(names []string, id uint32) string {
	if names != nil && int(id) < len(names) {
		return names[id]
	}
	return fmt.Sprintf("doc%d", id)
}
