package boss

import (
	"context"
	"fmt"
	"time"

	"boss/internal/core"
	"boss/internal/front"
	"boss/internal/perf"
	"boss/internal/pool"
	"boss/internal/query"
	"boss/internal/topk"
)

// Serving-tier admission errors, re-exported from the front door.
var (
	// ErrShed reports a low-priority request shed because its tenant
	// exceeded its rate. The request never executed.
	ErrShed = front.ErrShed
	// ErrOverloaded reports the admission queue was at capacity.
	ErrOverloaded = front.ErrOverloaded
)

// Priority places a serving request on the front door's shedding ladder:
// under pressure, PriorityLow sheds first and PriorityHigh degrades
// last. The zero value is PriorityNormal.
type Priority uint8

// Serving priorities.
const (
	PriorityNormal Priority = iota
	PriorityLow
	PriorityHigh
)

// TenantRate is one tenant's serving rate limit: Rate requests per
// second with a Burst ceiling (Burst defaults to Rate).
type TenantRate struct {
	Rate  float64
	Burst float64
}

// FrontConfig tunes the front-door serving tier. The zero value gets
// serving defaults (batches of 16, a 256-deep admission queue, 10 ms
// deadlines with 2 ms flush slack, degradation past 75% queue fill).
// Serving is opt-in: nothing changes for callers that never Serve.
type FrontConfig struct {
	// BatchTarget is the pending-request count that triggers a flush.
	BatchTarget int
	// MaxQueue bounds admitted-but-unfinished executions; beyond it
	// Submit returns ErrOverloaded.
	MaxQueue int
	// Timeout is the deadline budget for requests without one.
	Timeout time.Duration
	// FlushSlack is how far before the earliest admitted deadline the
	// pending batch is force-flushed.
	FlushSlack time.Duration
	// DegradeWatermark is the queue-fill fraction past which non-high
	// admissions degrade to partial-node answers (≥ 1 disables).
	DegradeWatermark float64
	// DegradeShards is how many memory nodes a degraded query skips
	// (default: half).
	DegradeShards int
	// Tenants configures per-tenant token buckets; absent tenants are
	// not rate-limited.
	Tenants map[string]TenantRate
}

func (c FrontConfig) toFront() front.Config {
	fc := front.Config{
		BatchTarget:      c.BatchTarget,
		MaxQueue:         c.MaxQueue,
		Timeout:          c.Timeout,
		FlushSlack:       c.FlushSlack,
		DegradeWatermark: c.DegradeWatermark,
		DegradeShards:    c.DegradeShards,
	}
	if len(c.Tenants) > 0 {
		fc.Tenants = make(map[string]front.TenantConfig, len(c.Tenants))
		for name, tr := range c.Tenants {
			fc.Tenants[name] = front.TenantConfig{Rate: tr.Rate, Burst: tr.Burst}
		}
	}
	return fc
}

// ServeRequest is one request to a serving-tier Server: either a search
// (Expr) or a document fetch (FetchIDs), never both.
type ServeRequest struct {
	// Expr is the boolean query expression.
	Expr string
	// FetchIDs, when non-empty, makes this a document-fetch request:
	// the payloads come back in ServedResult.Docs. Fetches share the
	// admission ladder, rate limits, coalescing, and batch former with
	// queries — identical concurrent id lists execute once, and a
	// degraded admission leaves the shed nodes' documents empty.
	// Mutually exclusive with Expr.
	FetchIDs []uint32
	// K is the top-k depth (<= 0 uses the deployment default).
	K int
	// Tenant names the rate-limit bucket the request draws from.
	Tenant string
	// Priority places the request on the shedding ladder.
	Priority Priority
	// Deadline is when the answer stops being useful (zero: now +
	// FrontConfig.Timeout).
	Deadline time.Time
}

// ServedResult is one served request's outcome.
type ServedResult struct {
	// Hits is the merged ranking (empty for fetch requests).
	Hits []Hit
	// Docs holds the fetched payloads of a FetchIDs request, aligned
	// with the submitted id list. Documents on degraded nodes come back
	// zero-valued with their DocID set.
	Docs []Doc
	// DedupHit reports the request coalesced onto another identical
	// in-flight query instead of executing its own.
	DedupHit bool
	// Degraded is a bitmask of memory nodes missing from Hits — shed
	// by the admission ladder or failed during execution. Zero means
	// the answer is complete.
	Degraded uint64
	// Hedged counts node attempts that fired a hedged backup replica
	// while executing this request (zero on single-copy deployments).
	Hedged int
}

// ServeStats snapshots a Server's admission and batching counters.
type ServeStats struct {
	// Submitted counts parseable requests, admitted or not.
	Submitted uint64
	// Fetches counts the document-fetch requests among Submitted.
	Fetches uint64
	// Admitted counts distinct executions admitted.
	Admitted uint64
	// DedupHits counts requests answered by coalescing onto an
	// identical in-flight execution.
	DedupHits uint64
	// Degraded counts admissions downgraded to partial-node answers.
	Degraded uint64
	// Shed counts requests shed by rate limiting (ErrShed).
	Shed uint64
	// Rejected counts requests refused at queue capacity
	// (ErrOverloaded).
	Rejected uint64
	// Batches counts batches flushed to the execution engine.
	Batches uint64
	// Executed counts distinct executions completed.
	Executed uint64
	// Hedged counts node attempts that fired a hedged backup replica,
	// summed over completed executions.
	Hedged uint64
}

// Server is a front-door serving tier over a deployment: a bounded
// admission queue feeding deadline-aware batch formation, coalescing of
// identical concurrent queries, and per-tenant rate limits with
// priority-aware shedding that degrades to partial-node answers before
// rejecting. Construct with ShardedIndex.Serve or Accelerator.Serve;
// Close releases it.
type Server struct {
	f    *front.Front
	hits func([]topk.Entry) []Hit
}

// ServeTicket is one waiter's handle on a submitted request. Exactly one
// of Wait or Cancel must be called.
type ServeTicket struct {
	s *Server
	t *front.Ticket
}

// Serve starts a front-door serving tier over the sharded deployment.
// Degraded admissions execute on a subset of memory nodes, reusing the
// resilient path's partial-answer machinery (ServedResult.Degraded uses
// the same node bitmask as BatchItem.Degraded).
func (s *ShardedIndex) Serve(cfg FrontConfig) (*Server, error) {
	f, err := front.New(cfg.toFront(), front.NewClusterBackend(s.cluster))
	if err != nil {
		return nil, err
	}
	return &Server{f: f, hits: func(entries []topk.Entry) []Hit {
		out := make([]Hit, len(entries))
		for i, e := range entries {
			out[i] = Hit{Doc: docName(s.names, e.DocID), DocID: e.DocID, Score: e.Score}
		}
		return out
	}}, nil
}

// Serve starts a front-door serving tier over the single-device
// accelerator. With one device there is nothing to degrade to, so the
// ladder sheds or rejects instead; coalescing, batching, and rate limits
// work identically to the sharded deployment.
func (a *Accelerator) Serve(cfg FrontConfig) (*Server, error) {
	f, err := front.New(cfg.toFront(), accelBackend{a: a})
	if err != nil {
		return nil, err
	}
	return &Server{f: f, hits: a.ix.hits}, nil
}

// accelBackend adapts the single-device accelerator to the front door's
// batch execution surface. It holds the facade handle rather than the
// core engine so fetch queries reach the lazily-wired fetch engine (and
// its docstore synthesis) through the same path FetchDocs uses.
type accelBackend struct {
	a *Accelerator
}

func (b accelBackend) Shards() int { return 1 }

func (b accelBackend) ExecuteBatch(ctx context.Context, qs []pool.BatchQuery, out []front.Out) {
	for i, q := range qs {
		if len(q.FetchIDs) > 0 {
			out[i] = b.fetchOut(ctx, q.FetchIDs)
			continue
		}
		node, err := query.Parse(q.Expr)
		if err != nil {
			out[i] = front.Out{Err: err}
			continue
		}
		k := q.K
		if k <= 0 {
			k = core.DefaultK
		}
		res, err := b.a.acc.RunCtx(ctx, node, k)
		if err != nil {
			out[i] = front.Out{Err: err}
			continue
		}
		out[i] = front.Out{TopK: res.TopK}
	}
}

// fetchOut serves one document-fetch batch query on the single device,
// copying each payload out of the zero-copy fetch buffer before the next
// fetch invalidates it.
func (b accelBackend) fetchOut(ctx context.Context, ids []uint32) front.Out {
	eng, err := b.a.fetchEngine()
	if err != nil {
		return front.Out{Err: err}
	}
	m := perf.NewMetrics()
	var buf core.DocBuf
	defer buf.Release()
	docs := make([]pool.FetchedDoc, len(ids))
	for i, id := range ids {
		if err := eng.FetchInto(ctx, id, m, &buf); err != nil {
			return front.Out{Err: err}
		}
		fields := make([][]byte, len(buf.Fields))
		for j, fb := range buf.Fields {
			fields[j] = append([]byte(nil), fb...)
		}
		docs[i] = pool.FetchedDoc{DocID: id, Fields: fields}
	}
	return front.Out{Docs: docs}
}

// Submit admits one request asynchronously, returning a ticket to wait
// on. Identical concurrent queries (same canonical boolean form, same k)
// coalesce into one execution. Admission failures return ErrShed,
// ErrOverloaded, or the expression's parse error.
func (s *Server) Submit(req ServeRequest) (*ServeTicket, error) {
	t, err := s.f.Submit(front.Request{
		Expr:     req.Expr,
		FetchIDs: req.FetchIDs,
		K:        req.K,
		Tenant:   req.Tenant,
		Priority: front.Priority(req.Priority),
		Deadline: req.Deadline,
	})
	if err != nil {
		return nil, err
	}
	return &ServeTicket{s: s, t: t}, nil
}

// Wait blocks until the result is delivered or ctx dies. The ticket is
// spent either way.
func (tk *ServeTicket) Wait(ctx context.Context) (*ServedResult, error) {
	res := tk.t.Wait(ctx)
	return servedResult(tk.s, res)
}

// Cancel abandons the ticket without waiting; if delivery already won
// the race the delivered result is returned.
func (tk *ServeTicket) Cancel() (*ServedResult, error) {
	res := tk.t.Cancel()
	return servedResult(tk.s, res)
}

// servedResult converts one delivered front-door result.
func servedResult(s *Server, res front.Result) (*ServedResult, error) {
	if res.Err != nil {
		return nil, res.Err
	}
	out := &ServedResult{
		DedupHit: res.DedupHit,
		Degraded: res.Degraded,
		Hedged:   res.Hedged,
	}
	if res.Docs != nil {
		out.Docs = docsFromFetched(res.Docs)
	} else {
		out.Hits = s.hits(res.TopK)
	}
	return out, nil
}

// Search is Submit + Wait.
func (s *Server) Search(ctx context.Context, req ServeRequest) (*ServedResult, error) {
	tk, err := s.Submit(req)
	if err != nil {
		return nil, err
	}
	return tk.Wait(ctx)
}

// Flush force-flushes the pending batch. Production traffic flushes on
// the size target and the deadline timer; Flush exists for drains,
// examples, and tests.
func (s *Server) Flush() { s.f.Flush() }

// Close flushes pending work, delivers every outstanding ticket, and
// rejects further Submits.
func (s *Server) Close() { s.f.Close() }

// Stats snapshots the serving counters.
func (s *Server) Stats() ServeStats {
	m := s.f.Metrics()
	return ServeStats{
		Submitted: m.Submitted,
		Fetches:   m.Fetches,
		Admitted:  m.Admitted,
		DedupHits: m.DedupHits,
		Degraded:  m.Degraded,
		Shed:      m.ShedTokens,
		Rejected:  m.RejectedFull,
		Batches:   m.Batches,
		Executed:  m.Executed,
		Hedged:    m.Hedged,
	}
}

// docName resolves a docID against an optional name table.
func docName(names []string, id uint32) string {
	if names != nil && int(id) < len(names) {
		return names[id]
	}
	return fmt.Sprintf("doc%d", id)
}
