module boss

go 1.22
