package boss_test

import (
	"context"
	"errors"
	"math/bits"
	"testing"
	"time"

	"boss"
)

// TestShardedIndexServeMatchesSearchCtx verifies the serving tier is
// transparent over a sharded deployment: results arriving through
// admission, batching, and coalescing match direct resilient searches.
func TestShardedIndexServeMatchesSearchCtx(t *testing.T) {
	sh, err := boss.Shard(boss.ClueWebLike, 0.01, 4)
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	srv, err := sh.Serve(boss.FrontConfig{BatchTarget: 8, Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	exprs := []string{`"t1"`, `"t2" AND "t3"`, `"t3" AND "t2"`, `"t0" OR "t5"`}
	const k = 40
	tickets := make([]*boss.ServeTicket, len(exprs))
	for i, e := range exprs {
		tickets[i], err = srv.Submit(boss.ServeRequest{Expr: e, K: k})
		if err != nil {
			t.Fatalf("Submit(%q): %v", e, err)
		}
	}
	srv.Flush()
	for i, e := range exprs {
		got, err := tickets[i].Wait(context.Background())
		if err != nil {
			t.Fatalf("Wait(%q): %v", e, err)
		}
		if got.Degraded != 0 {
			t.Fatalf("%q degraded: %04b", e, got.Degraded)
		}
		want, err := sh.SearchCtx(context.Background(), e, k)
		if err != nil {
			t.Fatalf("SearchCtx(%q): %v", e, err)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("%q: served %d hits, direct %d", e, len(got.Hits), len(want.Hits))
		}
		for j := range want.Hits {
			if got.Hits[j] != want.Hits[j] {
				t.Fatalf("%q hit %d: served %+v, direct %+v", e, j, got.Hits[j], want.Hits[j])
			}
		}
	}
	st := srv.Stats()
	if st.DedupHits != 1 || st.Admitted != 3 {
		t.Fatalf("stats = %+v, want 3 admissions and 1 dedup hit", st)
	}
}

// TestServeShedAndDegrade exercises the facade's shedding ladder: an
// exhausted tenant bucket sheds low-priority requests with ErrShed and
// degrades normal ones to partial-node answers.
func TestServeShedAndDegrade(t *testing.T) {
	sh, err := boss.Shard(boss.ClueWebLike, 0.01, 4)
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	srv, err := sh.Serve(boss.FrontConfig{
		BatchTarget: 8,
		Timeout:     100 * time.Millisecond,
		Tenants:     map[string]boss.TenantRate{"t": {Rate: 1, Burst: 1}},
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	full, err := srv.Submit(boss.ServeRequest{Expr: `"t1"`, K: 20, Tenant: "t"})
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if _, err := srv.Submit(boss.ServeRequest{Expr: `"t2"`, K: 20, Tenant: "t", Priority: boss.PriorityLow}); !errors.Is(err, boss.ErrShed) {
		t.Fatalf("low-priority over rate: err = %v, want ErrShed", err)
	}
	part, err := srv.Submit(boss.ServeRequest{Expr: `"t3"`, K: 20, Tenant: "t"})
	if err != nil {
		t.Fatalf("normal over rate: %v", err)
	}
	srv.Flush()
	fr, err := full.Wait(context.Background())
	if err != nil || fr.Degraded != 0 {
		t.Fatalf("in-rate request: err=%v degraded=%04b", err, fr.Degraded)
	}
	pr, err := part.Wait(context.Background())
	if err != nil {
		t.Fatalf("degraded request: %v", err)
	}
	if pr.Degraded == 0 {
		t.Fatal("over-rate normal request was not degraded")
	}
	if bits.OnesCount64(pr.Degraded) != 2 {
		t.Fatalf("degraded node count = %d, want 2 (half of 4)", bits.OnesCount64(pr.Degraded))
	}
	if len(pr.Hits) == 0 {
		t.Fatal("degraded request returned no partial answer")
	}
	st := srv.Stats()
	if st.Shed != 1 || st.Degraded != 1 {
		t.Fatalf("stats = %+v, want 1 shed and 1 degraded", st)
	}
}

// TestServeTicketCancel verifies a cancelled facade ticket reports an
// error and the server keeps serving others.
func TestServeTicketCancel(t *testing.T) {
	sh, err := boss.Shard(boss.ClueWebLike, 0.01, 2)
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	srv, err := sh.Serve(boss.FrontConfig{BatchTarget: 8, Timeout: time.Hour})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	tk, err := srv.Submit(boss.ServeRequest{Expr: `"t1"`, K: 10})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := tk.Cancel(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Cancel: err = %v, want context.Canceled", err)
	}
	res, err := srv.Search(context.Background(), boss.ServeRequest{Expr: `"t1"`, K: 10, Deadline: time.Now().Add(50 * time.Millisecond)})
	if err != nil {
		t.Fatalf("Search after cancel: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("Search after cancel returned no hits")
	}
}

// TestServeFetchSharded: document fetches ride the serving tier over a
// sharded deployment — coalescing, batching, and the payloads themselves
// match the direct fetch path.
func TestServeFetchSharded(t *testing.T) {
	sh, err := boss.Shard(boss.CCNewsLike, 0.004, 3)
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	srv, err := sh.Serve(boss.FrontConfig{BatchTarget: 8, Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	ids := []uint32{0, 5, 1000}
	t1, err := srv.Submit(boss.ServeRequest{FetchIDs: ids})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := srv.Submit(boss.ServeRequest{FetchIDs: ids}) // coalesces
	if err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	got, err := t1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dup, err := t2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !dup.DedupHit {
		t.Fatal("identical concurrent fetch did not coalesce")
	}
	want, err := sh.FetchDocsCtx(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Docs) != len(ids) {
		t.Fatalf("served %d docs for %d ids", len(got.Docs), len(ids))
	}
	for i := range ids {
		if got.Docs[i] != want.Docs[i] {
			t.Fatalf("doc %d: served %+v, direct %+v", i, got.Docs[i], want.Docs[i])
		}
		if dup.Docs[i] != want.Docs[i] {
			t.Fatalf("doc %d: coalesced waiter diverges", i)
		}
	}
	st := srv.Stats()
	if st.Fetches != 2 || st.DedupHits != 1 {
		t.Fatalf("stats = %+v, want 2 fetches / 1 dedup", st)
	}
	// Mixed requests are rejected before admission.
	if _, err := srv.Submit(boss.ServeRequest{Expr: `"t1"`, FetchIDs: ids}); err == nil {
		t.Fatal("mixed search+fetch request admitted")
	}
}

// TestServeFetchAccelerator: the single-device serving tier serves
// fetches through the same lazily-wired engine FetchDocs uses.
func TestServeFetchAccelerator(t *testing.T) {
	b := boss.NewBuilder()
	b.Add("alpha", "the quick brown fox")
	b.Add("beta", "jumps over the lazy dog")
	acc := b.Build().Accelerator(boss.AccelOptions{})
	srv, err := acc.Serve(boss.FrontConfig{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	tk, err := srv.Submit(boss.ServeRequest{FetchIDs: []uint32{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 2 || res.Docs[0].Name != "beta" || res.Docs[1].Text != "the quick brown fox" {
		t.Fatalf("served docs = %+v", res.Docs)
	}
	// A search through the same server still works alongside fetches.
	sr, err := srv.Search(context.Background(), boss.ServeRequest{Expr: `"quick"`, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Hits) != 1 || sr.Hits[0].Doc != "alpha" {
		t.Fatalf("search hits = %+v", sr.Hits)
	}
	// Out-of-range ids surface the engine's typed failure.
	bad, err := srv.Submit(boss.ServeRequest{FetchIDs: []uint32{99}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	if _, err := bad.Wait(context.Background()); err == nil {
		t.Fatal("out-of-range served fetch succeeded")
	}
}
