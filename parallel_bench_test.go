package boss

// Wall-clock benchmarks for the parallel execution layer. Unlike the
// experiment benchmarks (which report simulated device quantities), these
// time real host execution: serial baselines next to their batch/parallel
// counterparts so `go test -bench=Parallel -benchmem` shows the actual
// speedup and per-query allocations.

import (
	"runtime"
	"sync"
	"testing"

	"boss/internal/core"
	"boss/internal/corpus"
	"boss/internal/engine"
	"boss/internal/pool"
	"boss/internal/query"
)

const benchShards = 4

var (
	benchClusterOnce sync.Once
	benchCluster     *pool.Cluster
)

// sharedCluster shards the ClueWeb-like corpus once across benchmarks.
func sharedCluster() *pool.Cluster {
	benchClusterOnce.Do(func() {
		s := sharedCtx().ClueWeb()
		var err error
		benchCluster, err = pool.NewCluster(pool.DefaultConfig(), s.Corpus, benchShards)
		if err != nil {
			panic(err)
		}
	})
	return benchCluster
}

// benchWorkload flattens the full sampled workload into parallel expr/node
// slices.
func benchWorkload() ([]string, []*query.Node) {
	s := sharedCtx().ClueWeb()
	var exprs []string
	var nodes []*query.Node
	for _, qt := range corpus.AllQueryTypes() {
		for _, q := range s.Workload[qt] {
			exprs = append(exprs, q.Expr)
			nodes = append(nodes, query.MustParse(q.Expr))
		}
	}
	return exprs, nodes
}

// heavyExpr returns a Q5-style union, the workload's most expensive shape —
// every shard participates, so shard fan-out has real work to parallelize.
func heavyExpr() string {
	s := sharedCtx().ClueWeb()
	return s.Workload[corpus.Q5][0].Expr
}

func BenchmarkClusterSearchSerial(b *testing.B) {
	cl := sharedCluster()
	expr := heavyExpr()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.SearchSerial(expr, benchCfg.K); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSearchParallel is the headline wall-clock number: speedup
// over BenchmarkClusterSearchSerial tracks GOMAXPROCS up to the shard count
// (the reported gomaxprocs metric says how many cores the run actually had —
// on a single-core machine the two benchmarks coincide by construction).
func BenchmarkClusterSearchParallel(b *testing.B) {
	cl := sharedCluster()
	expr := heavyExpr()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Search(expr, benchCfg.K); err != nil {
			b.Fatal(err)
		}
	}
}

// zipfExprs samples a Zipf-skewed query workload over the ClueWeb-like
// corpus: term popularity in the queries follows the corpus's own skew, so
// hot posting blocks recur across queries the way they do in real traffic.
// The shapes are the conjunctive ones of Table II (Q2: A AND B, Q4: A AND B
// AND C AND D) — AND is the default semantics of production web search, and
// conjunctions are where decode dominates evaluation, i.e. the serving mix
// the decoded-block cache targets.
func zipfExprs(n int) []string {
	s := sharedCtx().ClueWeb()
	types := []corpus.QueryType{corpus.Q2, corpus.Q4}
	per := (n + len(types) - 1) / len(types)
	exprs := make([]string, 0, n)
	for _, qt := range types {
		for _, q := range corpus.SampleZipfQueries(s.Corpus, qt, per, 0, int64(benchCfg.Seed)) {
			if len(exprs) == n {
				break
			}
			exprs = append(exprs, q.Expr)
		}
	}
	return exprs
}

// batchK is the serving depth for the batch benchmark: first-stage retrieval
// at a typical page depth, where block skipping and the cache interact the
// way a serving tier sees them. The harness figures keep the paper's
// K=1000 default; this constant only shapes the throughput benchmark.
const batchK = 10

// BenchmarkClusterSearchBatch is the PR 4 headline: a 1000-query Zipfian
// conjunctive batch through the sharded cluster with the decoded-block cache
// off vs on. The cache=on sub-benchmark's speedup is cross-query block reuse
// only — results and simulated metrics are bit-identical either way
// (TestClusterCacheDeterminism).
func BenchmarkClusterSearchBatch(b *testing.B) {
	cl := sharedCluster()
	exprs := zipfExprs(1000)
	for _, bc := range []struct {
		name  string
		bytes int64
	}{
		{"cache=off", 0},
		{"cache=on", pool.DefaultCacheBytes},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cl.SetCacheBytes(bc.bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if br := cl.SearchBatch(exprs, batchK); br.Err != nil {
					b.Fatal(br.Err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(exprs)), "queries/op")
			if st := cl.CacheStats(); st.Hits+st.Misses > 0 {
				b.ReportMetric(st.HitRate(), "hit-rate")
			}
		})
	}
	// Other benchmarks share this cluster: restore the default-on cache.
	cl.SetCacheBytes(pool.DefaultCacheBytes)
}

func BenchmarkEngineRun(b *testing.B) {
	eng := engine.New(sharedCtx().ClueWeb().Hybrid)
	_, nodes := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nodes {
			if _, err := eng.Run(n, benchCfg.K); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(nodes)), "queries/op")
}

func BenchmarkEngineRunBatch(b *testing.B) {
	eng := engine.New(sharedCtx().ClueWeb().Hybrid)
	_, nodes := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if br := eng.RunBatch(nodes, benchCfg.K, 0); br.Err != nil {
			b.Fatal(br.Err)
		}
	}
	b.ReportMetric(float64(len(nodes)), "queries/op")
}

func BenchmarkAcceleratorRun(b *testing.B) {
	acc := core.New(sharedCtx().ClueWeb().Hybrid, core.DefaultOptions())
	_, nodes := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nodes {
			if _, err := acc.Run(n, benchCfg.K); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(nodes)), "queries/op")
}

// BenchmarkBOSSQuery is the single-query allocation benchmark for the BOSS
// model path: one heavy union through one accelerator. Run with -benchmem;
// allocs/op here is the number the compiled-decompressor work is measured
// against (CHANGES.md records before/after).
func BenchmarkBOSSQuery(b *testing.B) {
	acc := core.New(sharedCtx().ClueWeb().Hybrid, core.DefaultOptions())
	node := query.MustParse(heavyExpr())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Run(node, benchCfg.K); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAcceleratorRunBatch(b *testing.B) {
	acc := core.New(sharedCtx().ClueWeb().Hybrid, core.DefaultOptions())
	_, nodes := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if br := acc.RunBatch(nodes, benchCfg.K, 0); br.Err != nil {
			b.Fatal(br.Err)
		}
	}
	b.ReportMetric(float64(len(nodes)), "queries/op")
}
